"""Vectorized schedule-replay engine: one NumPy pass for a whole batch.

The schedule-replay fast path (:mod:`repro.machine.fastpath`) already
exploits the pipeline's data-independent timing: control is recorded once
and only the data path re-executes per trace.  This module takes the next
step the recorded schedule makes possible — since N traces of the same
program march in lockstep, the per-cycle data path can be evaluated for
the *whole batch at once*:

* the replayed program is first compiled (once per program, cached) into a
  :class:`_VectorPlan`: a symbolic sweep over the schedule resolves every
  latched value to either a compile-time constant (immediates, loop
  counters, addresses — constant-folded through the scalar ALU handlers),
  an ALU result row, or a load row;
* at run time the plan executes as a flat list of NumPy ops over
  ``[n_traces]`` operand vectors, with data memory held as one dense
  ``[n_traces, window_words]`` matrix;
* the energy post-pass materializes the latch/bus/functional-unit value
  streams as ``[n_cycles, n_traces]`` matrices and scores Hamming-distance
  events via vectorized ``value & ~prev`` + popcount, emitting per-cycle
  energy for every trace in one pass.

The accuracy contract is the same **bit identity** the fast engine claims:
every floating-point addition happens in the order the reference hook
sequence performs it (component order within a cycle via left-associated
elementwise adds, cycle order via ``np.cumsum`` — a sequential, not
pairwise, reduction), and the injected noise stream replays draw-for-draw.
``tests/machine/test_vector.py`` enforces this differentially against the
reference engine for every experiment workload.

Like the fast engine, correctness never depends on the data-independence
heuristic: every recorded branch/indirect-jump outcome is re-checked
against the batch (vectorized, after the data sweep — sound because replay
is unconditional and nothing is committed on failure) and a mismatch
raises :class:`~repro.machine.fastpath.ScheduleDivergence` for the caller
to re-run on a scalar engine.  Programs the vector model cannot express —
data-dependent addresses leaving the modeled memory window, computed store
addresses that could alias the marker port — raise
:class:`VectorUnsupported`, which the engine registry's fallback chain
turns into a transparent ``fast`` (then ``reference``) retry.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..energy.coupling import CoupledBusModel
from ..energy.models import BusModel, FunctionalUnitModel, LatchModel
from ..energy.tracker import COMPONENTS
from ..isa.instructions import AluOp
from ..isa.program import Program
from .exceptions import SimulationError
from .fastpath import (_ALU_FUNCS, _BRANCH_FUNCS, _MEM_LB, _MEM_LBU,
                       _MEM_LW, _MEM_SW, _WORD_MASK, ScheduleDivergence,
                       ScheduleFallback, ScheduleUnavailable, _BoundSchedule,
                       bound_schedule_for, mark_divergent, program_digest)
from .memory import Memory
from .pipeline import MARKER_ADDR
from .regfile import RegisterFile

_MASK32 = np.uint32(0xFFFF_FFFF)
#: Slack above/below the statically known data extent, so small pointer
#: arithmetic past an array stays inside the modeled window.
_WINDOW_MARGIN_WORDS = 64
#: Refuse to model absurdly scattered address ranges densely.
_MAX_WINDOW_WORDS = 1 << 22
#: Whole-batch working-set ceiling; larger batches fall back to scalar.
_MAX_BATCH_BYTES = 1 << 30
#: The tracker draws Gaussian noise in chunks of this size; replaying the
#: same chunking reproduces its stream draw-for-draw.
_NOISE_CHUNK = 4096


class VectorUnsupported(ScheduleUnavailable):
    """The vector engine cannot serve this program or batch (model limits,
    not divergence); callers fall back to the scalar engines."""


# ---------------------------------------------------------------------------
# Bit-twiddling primitives
# ---------------------------------------------------------------------------

if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # pragma: no cover - NumPy < 2.0 fallback
    def _popcount(values: np.ndarray) -> np.ndarray:
        """SWAR popcount for uint32/uint64 arrays."""
        if values.dtype == np.uint64:
            v = values.copy()
            v -= (v >> 1) & 0x5555555555555555
            v = (v & 0x3333333333333333) + ((v >> 2) & 0x3333333333333333)
            v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0F
            return ((v * 0x0101010101010101) >> 56).astype(np.uint8)
        v = values.astype(np.uint32)
        v -= (v >> 1) & 0x55555555
        v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
        v = (v + (v >> 4)) & 0x0F0F0F0F
        return ((v * 0x01010101) >> 24).astype(np.uint8)


def _spread64(v32: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.energy.coupling._spread_bits_32_to_64`."""
    v = v32.astype(np.uint64)
    v = (v | (v << 16)) & 0x0000FFFF0000FFFF
    v = (v | (v << 8)) & 0x00FF00FF00FF00FF
    v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0F
    v = (v | (v << 2)) & 0x3333333333333333
    v = (v | (v << 1)) & 0x5555555555555555
    return v


def _i32(x):
    """Signed reinterpretation of a uint32 vector or scalar operand."""
    if isinstance(x, np.ndarray):
        return x.view(np.int32)
    value = int(x)
    if value & 0x8000_0000:
        value -= 0x1_0000_0000
    return np.int32(value)


_SH31 = np.uint32(31)


def _sh(b):
    return np.bitwise_and(b, _SH31)


# Vector twins of fastpath._ALU_FUNCS; each writes a full [n] uint32 row.
# uint32 arithmetic wraps exactly like the scalar ``& _WORD_MASK``.

def _v_add(a, b, out):
    np.add(a, b, out=out)


def _v_sub(a, b, out):
    np.subtract(a, b, out=out)


def _v_and(a, b, out):
    np.bitwise_and(a, b, out=out)


def _v_or(a, b, out):
    np.bitwise_or(a, b, out=out)


def _v_xor(a, b, out):
    np.bitwise_xor(a, b, out=out)


def _v_nor(a, b, out):
    np.bitwise_or(a, b, out=out)
    np.invert(out, out=out)


def _v_slt(a, b, out):
    out[...] = np.less(_i32(a), _i32(b))


def _v_sltu(a, b, out):
    out[...] = np.less(a, b)


def _v_sll(a, b, out):
    np.left_shift(a, _sh(b), out=out)


def _v_srl(a, b, out):
    np.right_shift(a, _sh(b), out=out)


def _v_sra(a, b, out):
    out[...] = np.right_shift(_i32(a), _sh(b))


def _v_lui(a, b, out):
    np.left_shift(b, np.uint32(16), out=out)


def _v_pass_a(a, b, out):
    out[...] = a


_VALU = {
    AluOp.ADD.value: _v_add, AluOp.SUB.value: _v_sub,
    AluOp.AND.value: _v_and, AluOp.OR.value: _v_or,
    AluOp.XOR.value: _v_xor, AluOp.NOR.value: _v_nor,
    AluOp.SLT.value: _v_slt, AluOp.SLTU.value: _v_sltu,
    AluOp.SLL.value: _v_sll, AluOp.SRL.value: _v_srl,
    AluOp.SRA.value: _v_sra, AluOp.LUI.value: _v_lui,
    AluOp.PASS_A.value: _v_pass_a,
}

#: Branch-check kinds (indices into the vector predicate dispatch).
_BR_KINDS = {"beq": 0, "bne": 1, "blez": 2, "bgtz": 3, "bltz": 4, "bgez": 5}
_BR_JR = 6

# Symbol tags: a latched value is a constant, an ALU output row, or a
# loaded-word row.
_CONST, _OUT, _LOAD = 0, 1, 2
_ZERO = (_CONST, 0)

# Runtime op tags.
(_OP_ALU, _OP_LW_C, _OP_LW_V, _OP_LB_C, _OP_LB_V,
 _OP_SW_C, _OP_SW_V, _OP_SB_C, _OP_SB_V) = range(9)


# ---------------------------------------------------------------------------
# Plan compilation: symbolic sweep over the recorded schedule
# ---------------------------------------------------------------------------

class _Gather:
    """Materializer for one per-row symbol list -> ``[rows, n]`` uint32."""

    __slots__ = ("rows", "const_rows", "const_vals", "out_rows", "out_src",
                 "load_rows", "load_src")

    def __init__(self, syms: list[tuple[int, int]]):
        self.rows = len(syms)
        const_rows: list[int] = []
        const_vals: list[int] = []
        out_rows: list[int] = []
        out_src: list[int] = []
        load_rows: list[int] = []
        load_src: list[int] = []
        for row, (tag, value) in enumerate(syms):
            if tag == _CONST:
                const_rows.append(row)
                const_vals.append(value & _WORD_MASK)
            elif tag == _OUT:
                out_rows.append(row)
                out_src.append(value)
            else:
                load_rows.append(row)
                load_src.append(value)
        self.const_rows = np.asarray(const_rows, np.int64)
        self.const_vals = np.asarray(const_vals, np.uint32)
        self.out_rows = np.asarray(out_rows, np.int64)
        self.out_src = np.asarray(out_src, np.int64)
        self.load_rows = np.asarray(load_rows, np.int64)
        self.load_src = np.asarray(load_src, np.int64)

    def materialize(self, out: np.ndarray, loads: np.ndarray,
                    n: int) -> np.ndarray:
        dest = np.empty((self.rows, n), np.uint32)
        if self.const_rows.size:
            dest[self.const_rows] = self.const_vals[:, None]
        if self.out_rows.size:
            dest[self.out_rows] = out[self.out_src]
        if self.load_rows.size:
            dest[self.load_rows] = loads[self.load_src]
        return dest


class _VectorPlan:
    """A program's schedule, compiled for whole-batch vector replay."""

    __slots__ = (
        "cycles", "n_loads", "w0", "window_words", "data_rel", "data_image",
        "ops", "checks", "marker_syms", "const_store_rels",
        "out_fill_rows", "out_fill_vals",
        "rec_ibus_ev", "rec_rw", "rec_l0_ev", "rec_sec_idx", "rec_mem",
        "steps", "col_s1", "col_s2", "col_s3",
        "mem_cycles", "mem_sec", "bus_gather",
        "units", "st_gather", "na_gather", "nb_gather", "nst_gather",
        "wbv_gather", "final_regs", "bytes_per_trace",
    )


def _enc(sym: tuple[int, int]):
    """Pre-wrap an operand symbol for the runtime loop (consts become
    NumPy scalars so the elementwise ops never re-box them)."""
    tag, value = sym
    if tag == _CONST:
        return (_CONST, np.uint32(value & _WORD_MASK))
    return (tag, value)


def _compile_plan(program: Program, bound: _BoundSchedule) -> _VectorPlan:
    schedule = bound.schedule
    records = schedule.records
    steps = schedule.steps
    n_cycles = schedule.cycles
    if n_cycles == 0:
        raise VectorUnsupported("empty schedule")

    # Per-record structural fields (raw record layout; see fastpath).
    recs = []
    rec_ibus_ev, rec_rw, rec_l0_ev = [], [], []
    rec_sec_idx, rec_mem = [], []
    for record in records:
        (_wb_idx, wb_dest, wb_sec, _mem_idx, mem_kind, mem_sec,
         _ex_idx, alu_name, unit_i, ex_sec, a_sel, b_sel, st_sel,
         ex_link, ctl, _id_idx, dec_live, a_reg, a_const, b_reg, b_const,
         st_reg, reads, writes, _fetch_idx, _fetch_active, _fetch_iword,
         ibus_ev, _l0_idx, _l0_iword, l0_ev, _l1_idx, s1, s2, s3) = record
        recs.append((wb_dest if wb_dest > 0 else -1, mem_kind, mem_sec,
                     alu_name, unit_i, ex_sec, a_sel, b_sel, st_sel,
                     ex_link, ctl, dec_live, a_reg, a_const, b_reg, b_const,
                     st_reg, s1, s2, s3))
        rec_ibus_ev.append(ibus_ev)
        rec_rw.append(reads + writes)
        rec_l0_ev.append(l0_ev)
        rec_sec_idx.append((8 if wb_sec else 0) | (4 if s1 else 0)
                           | (2 if s2 else 0) | (1 if s3 else 0))
        rec_mem.append(bool(mem_kind))

    # ---- symbolic data-path sweep --------------------------------------
    regs_sym: list[tuple[int, int]] = [_ZERO] * 32
    wb_sym = memalu_sym = memstore_sym = _ZERO
    idexa_sym = idexb_sym = idexst_sym = _ZERO

    out_syms: list[tuple[int, int]] = []
    st_syms: list[tuple[int, int]] = []
    na_syms: list[tuple[int, int]] = []
    nb_syms: list[tuple[int, int]] = []
    nst_syms: list[tuple[int, int]] = []
    wbv_syms: list[tuple[int, int]] = []
    bus_syms: list[tuple[int, int]] = []
    mem_cycles: list[int] = []
    mem_secs: list[bool] = []
    unit_data: dict[int, list] = {1: [], 2: [], 3: []}
    raw_ops: list[tuple] = []
    checks: list[tuple] = []
    marker_syms: list[tuple] = []
    const_addrs: list[tuple[int, int]] = []
    n_loads = 0

    for c, slot in enumerate(steps):
        (wb_wr, mem_kind, mem_sec, alu_name, unit_i, ex_sec,
         a_sel, b_sel, st_sel, ex_link, ctl, dec_live,
         a_reg, a_const, b_reg, b_const, st_reg, s1, s2, s3) = recs[slot]
        # ---- WB ----
        if wb_wr >= 0:
            regs_sym[wb_wr] = wb_sym
        # ---- MEM ----
        new_wb = memalu_sym
        if mem_kind:
            addr_sym = memalu_sym
            if mem_kind == _MEM_LW or mem_kind == _MEM_LBU \
                    or mem_kind == _MEM_LB:
                raw_ops.append(("load", mem_kind, addr_sym, n_loads))
                if addr_sym[0] == _CONST:
                    const_addrs.append((addr_sym[1], mem_kind))
                new_wb = (_LOAD, n_loads)
                bus_syms.append(new_wb)
                n_loads += 1
            else:
                if addr_sym[0] == _CONST and addr_sym[1] == MARKER_ADDR:
                    marker_syms.append((c, memstore_sym))
                else:
                    raw_ops.append(("store", mem_kind, addr_sym,
                                    memstore_sym))
                    if addr_sym[0] == _CONST:
                        const_addrs.append((addr_sym[1], mem_kind))
                bus_syms.append(memstore_sym)
            mem_cycles.append(c)
            mem_secs.append(mem_sec)
        # ---- EX (forwarding pre-resolved) ----
        a_sym = idexa_sym if a_sel == 0 else (memalu_sym if a_sel == 1
                                              else wb_sym)
        b_sym = idexb_sym if b_sel == 0 else (memalu_sym if b_sel == 1
                                              else wb_sym)
        stv_sym = idexst_sym if st_sel == 0 else (memalu_sym if st_sel == 1
                                                  else wb_sym)
        if ex_link >= 0:
            out_sym = (_CONST, ex_link)
        elif alu_name is None:
            out_sym = _ZERO
        elif a_sym[0] == _CONST and b_sym[0] == _CONST:
            out_sym = (_CONST, _ALU_FUNCS[alu_name](a_sym[1], b_sym[1]))
        else:
            out_sym = (_OUT, c)
            raw_ops.append(("alu", c, alu_name, a_sym, b_sym))
        if ctl is not None:
            if ctl[0] == "b":
                _kind, op_name, expected = ctl
                if a_sym[0] == _CONST and b_sym[0] == _CONST:
                    if _BRANCH_FUNCS[op_name](a_sym[1], b_sym[1]) \
                            != expected:  # pragma: no cover - defensive
                        raise VectorUnsupported(
                            "constant branch disagrees with recording")
                else:
                    checks.append((c, _BR_KINDS[op_name], _enc(a_sym),
                                   _enc(b_sym), expected))
            else:
                target = ctl[1]
                if a_sym[0] == _CONST:
                    if a_sym[1] != target:  # pragma: no cover - defensive
                        raise VectorUnsupported(
                            "constant jump target disagrees with recording")
                else:
                    checks.append((c, _BR_JR, _enc(a_sym), None, target))
        if unit_i:
            unit_data[unit_i].append((c, ex_sec, a_sym, b_sym))
        # ---- ID ----
        if dec_live:
            next_a = regs_sym[a_reg] if a_reg >= 0 else (_CONST, a_const)
            next_b = regs_sym[b_reg] if b_reg >= 0 else (_CONST, b_const)
            next_st = regs_sym[st_reg] if st_reg >= 0 else _ZERO
        else:
            next_a = next_b = next_st = _ZERO
        out_syms.append(out_sym)
        st_syms.append(stv_sym)
        na_syms.append(next_a)
        nb_syms.append(next_b)
        nst_syms.append(next_st)
        wbv_syms.append(new_wb)
        # ---- state rotation ----
        wb_sym = new_wb
        memalu_sym = out_sym
        memstore_sym = stv_sym
        idexa_sym, idexb_sym, idexst_sym = next_a, next_b, next_st

    # ---- memory window -------------------------------------------------
    lo = program.data_base >> 2
    hi = lo + len(program.data)
    for addr, kind in const_addrs:
        if (kind == _MEM_LW or kind == _MEM_SW) and addr & 3:
            raise VectorUnsupported(
                f"constant unaligned word access at 0x{addr:08x}")
        word = addr >> 2
        lo = min(lo, word)
        hi = max(hi, word + 1)
    lo = max(0, lo - _WINDOW_MARGIN_WORDS)
    hi += _WINDOW_MARGIN_WORDS
    window_words = hi - lo
    if window_words > _MAX_WINDOW_WORDS:
        raise VectorUnsupported(
            f"modeled memory window too large ({window_words} words)")

    # ---- finalize runtime ops ------------------------------------------
    ops: list[tuple] = []
    const_store_rels: list[int] = []
    for raw in raw_ops:
        if raw[0] == "alu":
            _t, c, alu_name, a_sym, b_sym = raw
            ops.append((_OP_ALU, c, _VALU[alu_name], _enc(a_sym),
                        _enc(b_sym)))
        elif raw[0] == "load":
            _t, kind, addr_sym, k = raw
            if addr_sym[0] == _CONST:
                rel = (addr_sym[1] >> 2) - lo
                if kind == _MEM_LW:
                    ops.append((_OP_LW_C, rel, k))
                else:
                    shift = (addr_sym[1] & 3) * 8
                    ops.append((_OP_LB_C, rel, shift, kind == _MEM_LB, k))
            elif kind == _MEM_LW:
                ops.append((_OP_LW_V, _enc(addr_sym), k))
            else:
                ops.append((_OP_LB_V, _enc(addr_sym), kind == _MEM_LB, k))
        else:
            _t, kind, addr_sym, val_sym = raw
            if addr_sym[0] == _CONST:
                rel = (addr_sym[1] >> 2) - lo
                const_store_rels.append(rel)
                if kind == _MEM_SW:
                    ops.append((_OP_SW_C, rel, _enc(val_sym)))
                else:
                    shift = (addr_sym[1] & 3) * 8
                    ops.append((_OP_SB_C, rel, shift, _enc(val_sym)))
            elif kind == _MEM_SW:
                ops.append((_OP_SW_V, _enc(addr_sym), _enc(val_sym)))
            else:
                ops.append((_OP_SB_V, _enc(addr_sym), _enc(val_sym)))

    plan = _VectorPlan()
    plan.cycles = n_cycles
    plan.n_loads = n_loads
    plan.w0 = lo
    plan.window_words = window_words
    plan.data_rel = (program.data_base >> 2) - lo
    plan.data_image = np.asarray([w & _WORD_MASK for w in program.data],
                                 np.uint32)
    plan.ops = ops
    plan.checks = checks
    plan.marker_syms = [(c, _enc(sym)) for c, sym in marker_syms]
    plan.const_store_rels = const_store_rels
    # OUT rows not produced by an op hold schedule constants; filling them
    # in-place turns OUT into the materialized EX-result stream.
    fill_rows = [c for c, sym in enumerate(out_syms) if sym[0] == _CONST]
    plan.out_fill_rows = np.asarray(fill_rows, np.int64)
    plan.out_fill_vals = np.asarray(
        [out_syms[c][1] & _WORD_MASK for c in fill_rows], np.uint32)
    plan.rec_ibus_ev = np.asarray(rec_ibus_ev, np.int64)
    plan.rec_rw = np.asarray(rec_rw, np.int64)
    plan.rec_l0_ev = np.asarray(rec_l0_ev, np.int64)
    plan.rec_sec_idx = np.asarray(rec_sec_idx, np.int64)
    plan.rec_mem = np.asarray(rec_mem, bool)
    plan.steps = np.asarray(steps, np.int64)
    rec_s1 = np.asarray([r[17] for r in recs], bool)
    rec_s2 = np.asarray([r[18] for r in recs], bool)
    rec_s3 = np.asarray([r[19] for r in recs], bool)
    plan.col_s1 = rec_s1[plan.steps]
    plan.col_s2 = rec_s2[plan.steps]
    plan.col_s3 = rec_s3[plan.steps]
    plan.mem_cycles = np.asarray(mem_cycles, np.int64)
    plan.mem_sec = np.asarray(mem_secs, bool)
    plan.bus_gather = _Gather(bus_syms)
    plan.units = {}
    for unit, entries in unit_data.items():
        if not entries:
            continue
        plan.units[unit] = (
            np.asarray([e[0] for e in entries], np.int64),
            np.asarray([e[1] for e in entries], bool),
            _Gather([e[2] for e in entries]),
            _Gather([e[3] for e in entries]),
        )
    plan.st_gather = _Gather(st_syms)
    plan.na_gather = _Gather(na_syms)
    plan.nb_gather = _Gather(nb_syms)
    plan.nst_gather = _Gather(nst_syms)
    plan.wbv_gather = _Gather(wbv_syms)
    plan.final_regs = [_enc(sym) for sym in regs_sym]
    # uint32 state matrices (OUT/ST/NA/NB/NST/WBV + loads + window) plus
    # float64 energy matrices (latches, funits, dbus, total).
    plan.bytes_per_trace = (window_words * 4 + n_loads * 4
                            + n_cycles * (6 * 4 + 4 * 8))
    return plan


#: ``(program digest, operand_isolation) -> (bound schedule, plan)``.  The
#: bound schedule identity is re-checked on every lookup so a cleared or
#: re-recorded fastpath cache invalidates the plan too.
_PLANS: dict[tuple[str, bool], tuple[_BoundSchedule, _VectorPlan]] = {}


def plan_for(program: Program, bound: _BoundSchedule) -> _VectorPlan:
    key = (program_digest(program), bound.schedule.operand_isolation)
    entry = _PLANS.get(key)
    if entry is not None and entry[0] is bound:
        return entry[1]
    plan = _compile_plan(program, bound)
    _PLANS[key] = (bound, plan)
    return plan


def _clear_caches() -> None:
    """Test hook: forget all compiled vector plans."""
    _PLANS.clear()


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------

def _resolve(operand, out: np.ndarray, loads: np.ndarray):
    tag, value = operand
    if tag == _OUT:
        return out[value]
    if tag == _LOAD:
        return loads[value]
    return value


class _BatchRun:
    """Raw results of one vector batch execution."""

    __slots__ = ("n", "out", "loads", "memmat", "touched", "marker_values",
                 "energy")

    def markers_for(self, t: int) -> tuple[tuple[int, int], ...]:
        return tuple((c, int(v[t]) if isinstance(v, np.ndarray) else int(v))
                     for c, v in self.marker_values)


class _BatchEnergy:
    """Per-cycle, per-trace energy plus exact sequential totals."""

    __slots__ = ("cycles", "e_clock", "total", "fun", "dbus", "lat",
                 "col_ibus", "col_regfile", "col_memport", "col_secure",
                 "totals_common", "fun_totals", "dbus_totals", "lat_totals")

    def totals_for(self, t: int) -> dict[str, float]:
        totals = dict(self.totals_common)
        totals["funits"] = float(self.fun_totals[t])
        totals["dbus"] = float(self.dbus_totals[t])
        totals["latches"] = float(self.lat_totals[t])
        totals["noise"] = 0.0
        return {name: totals[name] for name in COMPONENTS} \
            | {"noise": 0.0}

    def components_for(self, t: int) -> np.ndarray:
        comp = np.empty((self.cycles, len(COMPONENTS)))
        comp[:, 0] = self.e_clock
        comp[:, 1] = self.col_ibus
        comp[:, 2] = self.col_regfile
        comp[:, 3] = self.fun[:, t]
        comp[:, 4] = self.dbus[:, t]
        comp[:, 5] = self.col_memport
        comp[:, 6] = self.lat[:, t]
        comp[:, 7] = self.col_secure
        return comp


def _prev_chain(values: np.ndarray, secure: np.ndarray) -> np.ndarray:
    """Previous-state matrix for a latched value stream: row k holds the
    state *before* cycle k (zero initially; all-ones after a secure
    commit, mirroring the models' pre-charged resting state)."""
    prev = np.empty_like(values)
    prev[0] = 0
    if values.shape[0] > 1:
        prev[1:] = values[:-1]
        reset = np.nonzero(secure[:-1])[0] + 1
        if reset.size:
            prev[reset] = _MASK32
    return prev


def _execute(program: Program, plan: _VectorPlan, n: int,
             inputs_list: list[list[tuple[int, list[int]]]],
             operand_isolation: bool,
             want_state: bool = False) -> _BatchRun:
    """Run the plan for ``n`` traces; raises :class:`ScheduleDivergence`
    (after marking the program divergent) or :class:`VectorUnsupported`."""
    window = plan.window_words
    w0 = plan.w0
    memmat = np.zeros((n, window), np.uint32)
    if plan.data_image.size:
        memmat[:, plan.data_rel:plan.data_rel + plan.data_image.size] = \
            plan.data_image
    for t, pairs in enumerate(inputs_list):
        for addr, words in pairs:
            if addr & 3:
                raise VectorUnsupported(
                    f"unaligned input write at 0x{addr:08x}")
            rel = (addr >> 2) - w0
            if rel < 0 or rel + len(words) > window:
                raise VectorUnsupported(
                    "input symbol outside modeled memory window")
            memmat[t, rel:rel + len(words)] = np.asarray(
                [w & _WORD_MASK for w in words], np.uint32)

    out = np.empty((plan.cycles, n), np.uint32)
    loads = np.empty((plan.n_loads, n), np.uint32)
    touched: list[np.ndarray] = []
    rows = np.arange(n)
    u3 = np.uint32(3)
    u255 = np.uint32(0xFF)
    sign_fill = np.uint32(0xFFFF_FF00)

    def var_index(addr, word_aligned: bool, is_store: bool) -> np.ndarray:
        wi = (addr >> np.uint32(2)).astype(np.int64)
        wi -= w0
        bad = (wi < 0) | (wi >= window)
        if word_aligned:
            bad |= (addr & u3) != 0
        if is_store:
            bad |= addr == np.uint32(MARKER_ADDR)
        if bad.any():
            raise VectorUnsupported(
                "computed address outside modeled memory window")
        return wi

    for op in plan.ops:
        tag = op[0]
        if tag == _OP_ALU:
            _t, c, fn, a_op, b_op = op
            fn(_resolve(a_op, out, loads), _resolve(b_op, out, loads),
               out[c])
        elif tag == _OP_LW_C:
            loads[op[2]] = memmat[:, op[1]]
        elif tag == _OP_LW_V:
            wi = var_index(_resolve(op[1], out, loads), True, False)
            loads[op[2]] = memmat[rows, wi]
        elif tag == _OP_LB_C:
            _t, rel, shift, signed, k = op
            value = (memmat[:, rel] >> np.uint32(shift)) & u255
            if signed:
                value = np.where((value & np.uint32(0x80)) != 0,
                                 value | sign_fill, value)
            loads[k] = value
        elif tag == _OP_LB_V:
            _t, addr_op, signed, k = op
            addr = _resolve(addr_op, out, loads)
            wi = var_index(addr, False, False)
            shift = (addr & u3) << u3
            value = (memmat[rows, wi] >> shift) & u255
            if signed:
                value = np.where((value & np.uint32(0x80)) != 0,
                                 value | sign_fill, value)
            loads[k] = value
        elif tag == _OP_SW_C:
            memmat[:, op[1]] = _resolve(op[2], out, loads)
        elif tag == _OP_SW_V:
            wi = var_index(_resolve(op[1], out, loads), True, True)
            memmat[rows, wi] = _resolve(op[2], out, loads)
            if want_state:
                touched.append(wi)
        elif tag == _OP_SB_C:
            _t, rel, shift, val_op = op
            keep = np.uint32(~(0xFF << shift) & _WORD_MASK)
            value = _resolve(val_op, out, loads)
            memmat[:, rel] = (memmat[:, rel] & keep) \
                | ((value & u255) << np.uint32(shift))
        else:  # _OP_SB_V
            _t, addr_op, val_op = op
            addr = _resolve(addr_op, out, loads)
            wi = var_index(addr, False, True)
            shift = (addr & u3) << u3
            value = _resolve(val_op, out, loads)
            memmat[rows, wi] = \
                (memmat[rows, wi] & ~(u255 << shift)) \
                | ((value & u255) << shift)
            if want_state:
                touched.append(wi)

    if plan.out_fill_rows.size:
        out[plan.out_fill_rows] = plan.out_fill_vals[:, None]

    # ---- branch verification (post-hoc: replay is unconditional, and on
    # mismatch every result above is discarded) -------------------------
    for check in plan.checks:
        c, kind, a_op, b_op, expected = check
        a = _resolve(a_op, out, loads)
        if kind == _BR_JR:
            bad = a != np.uint32(expected)
        else:
            b = _resolve(b_op, out, loads)
            if kind == 0:
                taken = np.equal(a, b)
            elif kind == 1:
                taken = np.not_equal(a, b)
            elif kind == 2:
                taken = _i32(a) <= 0
            elif kind == 3:
                taken = _i32(a) > 0
            elif kind == 4:
                taken = _i32(a) < 0
            else:
                taken = _i32(a) >= 0
            bad = taken != expected
        if np.any(bad):
            mark_divergent(program, operand_isolation)
            raise ScheduleDivergence(c)

    run = _BatchRun()
    run.n = n
    run.out = out
    run.loads = loads
    run.memmat = memmat
    run.touched = touched
    run.marker_values = [(c, _resolve(operand, out, loads))
                         for c, operand in plan.marker_syms]
    return run


# ---------------------------------------------------------------------------
# Energy post-pass
# ---------------------------------------------------------------------------

def _transition_energy(values: np.ndarray, secure: np.ndarray):
    """Rising-bit counts (uint8) for a latched stream with secure resets."""
    prev = _prev_chain(values, secure)
    return _popcount(np.bitwise_and(values, np.invert(prev)))


def _energy_postpass(plan: _VectorPlan, params, run: _BatchRun,
                     ) -> _BatchEnergy:
    """Score the batch: per-cycle ``[n_cycles, n_traces]`` energy, with
    every float addition in the reference engine's order (see module
    docstring for why this is bit-identical)."""
    n = run.n
    out, loads = run.out, run.loads
    n_cycles = plan.cycles
    steps = plan.steps

    e_clock = params.e_clock_cycle
    e_port = params.e_regfile_port
    e_mem = params.e_memory_access
    e_latch = params.event_energy_latch
    ibus = BusModel(params.event_energy_instr_bus, params.width)
    if params.c_coupling > 0:
        dbus_model = CoupledBusModel(params.event_energy_data_bus,
                                     params.event_energy_coupling,
                                     params.width)
    else:
        dbus_model = BusModel(params.event_energy_data_bus, params.width)
    unit_models = {
        1: FunctionalUnitModel(params.event_energy_alu,
                               1.5 * params.event_energy_alu, params.width),
        2: FunctionalUnitModel(params.event_energy_xor_static,
                               params.event_energy_xor, params.width),
        3: FunctionalUnitModel(params.event_energy_shift,
                               1.5 * params.event_energy_shift,
                               params.width),
    }
    latch_secure = {
        1: LatchModel(e_latch, 3, params.width).secure_energy,
        2: LatchModel(e_latch, 2, params.width).secure_energy,
        3: LatchModel(e_latch, 1, params.width).secure_energy,
    }
    # Same successive accumulation as the scalar fast path's sec_table.
    sec_table = []
    for sec_idx in range(16):
        value = 0.0
        if sec_idx & 8:
            value += params.e_dummy_load
        if sec_idx & 4:
            value += params.e_secure_clock
        if sec_idx & 2:
            value += params.e_secure_clock
        if sec_idx & 1:
            value += params.e_secure_clock
        sec_table.append(value)

    col_ibus = (plan.rec_ibus_ev * ibus.event_energy)[steps]
    col_regfile = (plan.rec_rw * e_port)[steps]
    col_memport = np.where(plan.rec_mem, e_mem, 0.0)[steps]
    col_secure = np.asarray(sec_table)[plan.rec_sec_idx][steps]
    col_l0 = (plan.rec_l0_ev * e_latch)[steps]

    # ---- pipeline latches (latch 0 + dual-rail latches 1..3) -----------
    lat = np.empty((n_cycles, n))
    lat[:] = col_l0[:, None]
    na = plan.na_gather.materialize(out, loads, n)
    nb = plan.nb_gather.materialize(out, loads, n)
    nst = plan.nst_gather.materialize(out, loads, n)
    ev1 = (_popcount(np.bitwise_and(na, np.invert(
        _prev_chain(na, plan.col_s1))))
        + _popcount(np.bitwise_and(nb, np.invert(
            _prev_chain(nb, plan.col_s1))))
        + _popcount(np.bitwise_and(nst, np.invert(
            _prev_chain(nst, plan.col_s1)))))
    lat += np.where(plan.col_s1[:, None], latch_secure[1], ev1 * e_latch)
    stv = plan.st_gather.materialize(out, loads, n)
    ev2 = (_transition_energy(out, plan.col_s2)
           + _transition_energy(stv, plan.col_s2))
    lat += np.where(plan.col_s2[:, None], latch_secure[2], ev2 * e_latch)
    wbv = plan.wbv_gather.materialize(out, loads, n)
    ev3 = _transition_energy(wbv, plan.col_s3)
    lat += np.where(plan.col_s3[:, None], latch_secure[3], ev3 * e_latch)

    # ---- functional units ----------------------------------------------
    fun = np.zeros((n_cycles, n))
    for unit, (cyc_u, sec_u, a_gather, b_gather) in plan.units.items():
        model = unit_models[unit]
        a_u = a_gather.materialize(out, loads, n)
        b_u = b_gather.materialize(out, loads, n)
        o_u = out[cyc_u]
        rising = (_popcount(np.bitwise_and(a_u, np.invert(
            _prev_chain(a_u, sec_u))))
            + _popcount(np.bitwise_and(b_u, np.invert(
                _prev_chain(b_u, sec_u))))
            + _popcount(np.bitwise_and(o_u, np.invert(
                _prev_chain(o_u, sec_u)))))
        fun[cyc_u] = np.where(sec_u[:, None], model.secure_energy,
                              rising * model.static_event_energy)

    # ---- data bus -------------------------------------------------------
    dbus = np.zeros((n_cycles, n))
    if plan.mem_cycles.size:
        bus = plan.bus_gather.materialize(out, loads, n)
        sec_m = plan.mem_sec
        prev = _prev_chain(bus, sec_m)
        rising = np.bitwise_and(bus, np.invert(prev))
        coupling = getattr(dbus_model, "coupling_event_energy", 0.0)
        normal = _popcount(rising) * dbus_model.event_energy
        if coupling:
            falling = np.bitwise_and(np.invert(bus), prev)
            maskw = np.uint32((1 << (params.width - 1)) - 1)
            switching = rising | falling
            exactly_one = (switching ^ (switching >> np.uint32(1))) & maskw
            opposite = ((rising & (falling >> np.uint32(1)))
                        | (falling & (rising >> np.uint32(1)))) & maskw
            events = _popcount(exactly_one) + 2 * _popcount(opposite)
            normal = normal + events * coupling
            falling64 = _spread64(np.invert(bus)) \
                | (_spread64(bus) << np.uint64(1))
            mask2w = np.uint64((1 << (2 * params.width - 1)) - 1)
            sec_events = _popcount(
                (falling64 ^ (falling64 >> np.uint64(1))) & mask2w)
            secure_e = dbus_model.base_secure_energy \
                + (2 * sec_events) * coupling
        else:
            secure_base = dbus_model.base_secure_energy \
                if isinstance(dbus_model, CoupledBusModel) \
                else dbus_model.secure_energy
            secure_e = secure_base
        dbus[plan.mem_cycles] = np.where(sec_m[:, None], secure_e, normal)

    # ---- total, in the reference end_cycle's addition order -------------
    base = e_clock + col_ibus
    base = base + col_regfile
    total = base[:, None] + fun
    total += dbus
    total += col_memport[:, None]
    total += lat
    total += col_secure[:, None]

    energy = _BatchEnergy()
    energy.cycles = n_cycles
    energy.e_clock = e_clock
    energy.total = total
    energy.col_ibus = col_ibus
    energy.col_regfile = col_regfile
    energy.col_memport = col_memport
    energy.col_secure = col_secure
    # Sequential (cumsum, not pairwise-sum) totals: exact float parity
    # with the scalar running accumulators.
    energy.totals_common = {
        "clock": float(np.cumsum(np.full(n_cycles, e_clock))[-1]),
        "ibus": float(np.cumsum(col_ibus)[-1]),
        "regfile": float(np.cumsum(col_regfile)[-1]),
        "memport": float(np.cumsum(col_memport)[-1]),
        "secure": float(np.cumsum(col_secure)[-1]),
    }
    energy.fun = fun.copy()
    energy.dbus = dbus.copy()
    energy.lat = lat.copy()
    energy.fun_totals = np.cumsum(fun, axis=0, out=fun)[-1].copy()
    energy.dbus_totals = np.cumsum(dbus, axis=0, out=dbus)[-1].copy()
    energy.lat_totals = np.cumsum(lat, axis=0, out=lat)[-1].copy()
    return energy


def _noise_draws(rng, sigma: float, count: int) -> np.ndarray:
    """Replay the tracker's chunked draw sequence for ``count`` cycles."""
    parts = []
    drawn = 0
    while drawn < count:
        parts.append(rng.normal(0.0, sigma, _NOISE_CHUNK))
        drawn += _NOISE_CHUNK
    return np.concatenate(parts)[:count] if parts \
        else np.zeros(0)


# ---------------------------------------------------------------------------
# Whole-batch entry point (engine registry `batch` hook)
# ---------------------------------------------------------------------------

def _batch_inputs(program: Program, job) -> Optional[list]:
    """Normalize one job's symbol inputs to ``(address, words)`` pairs;
    ``None`` when a symbol is unknown (scalar path raises canonically)."""
    inputs = dict(job.inputs) if job.inputs else {}
    if job.des_pair is not None:
        from ..programs.workloads import key_words, plaintext_words

        key64, plaintext64 = job.des_pair
        inputs["key"] = key_words(key64)
        if "plaintext" in program.symbols:
            inputs["plaintext"] = plaintext_words(plaintext64)
    pairs = []
    for symbol, words in inputs.items():
        try:
            pairs.append((program.address_of(symbol), list(words)))
        except KeyError:
            return None
    return pairs


def run_job_batch(jobs, program: Program,
                  cache_hit: Optional[bool] = None) -> Optional[list]:
    """Execute a homogeneous batch of SimJobs in one vector pass.

    Returns submission-ordered JobResults, or ``None`` when the batch
    cannot be vector-served (no schedule, divergence, unsupported model,
    working set too large) — the caller then falls back to per-job
    execution, where the registry's fallback chain applies per trace.
    """
    from ..harness.engine import JobResult

    job0 = jobs[0]
    n = len(jobs)
    start = time.perf_counter()
    try:
        bound = bound_schedule_for(program,
                                   operand_isolation=job0.operand_isolation,
                                   max_cycles=job0.max_cycles)
        plan = plan_for(program, bound)
    except ScheduleFallback:
        return None
    if plan.bytes_per_trace * n > _MAX_BATCH_BYTES:
        return None
    inputs_list = []
    for job in jobs:
        pairs = _batch_inputs(program, job)
        if pairs is None:
            return None
        inputs_list.append(pairs)
    try:
        run = _execute(program, plan, n, inputs_list,
                       job0.operand_isolation)
        energy = _energy_postpass(plan, job0.params, run)
    except ScheduleFallback:
        # Divergence is already marked; the per-job retry will route the
        # whole batch through the scalar engines.
        return None
    schedule = bound.schedule
    sigma = job0.noise_sigma
    results = []
    for t, job in enumerate(jobs):
        trace = energy.total[:, t].copy()
        totals = energy.totals_for(t)
        counts = dict(schedule.counts)
        counts["noise"] = 0
        if sigma > 0:
            rng = np.random.default_rng(job.noise_seed)
            draws = _noise_draws(rng, sigma, plan.cycles)
            trace += draws
            totals["noise"] = float(np.cumsum(draws)[-1])
            counts["noise"] = plan.cycles
        components = energy.components_for(t) \
            if job.collect_components else None
        results.append(JobResult(
            label=job.label, cycles=plan.cycles, energy=trace,
            markers=run.markers_for(t), totals=totals,
            components=components, cache_hit=cache_hit,
            counts=counts, engine="vector"))
    wall = (time.perf_counter() - start) / n
    for result in results:
        result.wall_time_s = wall
    return results


# ---------------------------------------------------------------------------
# Single-run adapter (engine registry `factory` hook)
# ---------------------------------------------------------------------------

class _VectorPipeline:
    """Post-run :class:`~repro.machine.pipeline.Pipeline` surface for a
    vector-replayed trace (stats/markers/regs/counters, no stepping)."""

    def __init__(self, program: Program, schedule, collect_mix: bool):
        self.program = program
        self.regs = RegisterFile()
        self.markers: list[tuple[int, int]] = []
        self.pc = program.entry
        self.cycle = 0
        self.halted = False
        self.retired = 0
        self.stall_cycles = 0
        self.squashed_instructions = 0
        self.branches_executed = 0
        self.branches_taken = 0
        self.loads_executed = 0
        self.stores_executed = 0
        self.secure_retired = 0
        self._schedule = schedule
        self._collect_mix = collect_mix

    @property
    def stats(self) -> dict[str, int | float]:
        return {
            "cycles": self.cycle,
            "retired": self.retired,
            "cpi": self.cycle / max(1, self.retired),
            "stall_cycles": self.stall_cycles,
            "squashed_instructions": self.squashed_instructions,
            "branches_executed": self.branches_executed,
            "branches_taken": self.branches_taken,
            "loads_executed": self.loads_executed,
            "stores_executed": self.stores_executed,
            "secure_retired": self.secure_retired,
            "secure_fraction_dynamic":
                self.secure_retired / max(1, self.retired),
        }

    @property
    def opcode_mix(self) -> dict[tuple[str, bool], int]:
        return dict(self._schedule.mix) if self._collect_mix else {}

    def _finish(self) -> None:
        stats = self._schedule.stats
        self.cycle = self._schedule.cycles
        self.pc = self._schedule.final_pc
        self.halted = True
        self.retired = stats["retired"]
        self.stall_cycles = stats["stall_cycles"]
        self.squashed_instructions = stats["squashed_instructions"]
        self.branches_executed = stats["branches_executed"]
        self.branches_taken = stats["branches_taken"]
        self.loads_executed = stats["loads_executed"]
        self.stores_executed = stats["stores_executed"]
        self.secure_retired = stats["secure_retired"]


class VectorCPU:
    """CPU-surface adapter running one trace as a batch of one.

    Exists so ``--engine vector`` covers *every* run shape (the tier-1
    suite runs under ``REPRO_ENGINE=vector`` in CI), not just DPA batches;
    the harness runner drives it exactly like :class:`~repro.machine.cpu
    .CPU`.  Raises :class:`~repro.machine.fastpath.ScheduleFallback`
    flavors from the constructor or :meth:`run` for the registry's
    fallback chain to handle.
    """

    def __init__(self, program: Program, tracker=None,
                 operand_isolation: bool = True, collect_mix: bool = False,
                 max_cycles: int = 50_000_000):
        self.program = program
        self.memory = Memory()
        self._tracker = tracker
        self._operand_isolation = operand_isolation
        self._bound = bound_schedule_for(program,
                                         operand_isolation=operand_isolation,
                                         max_cycles=max_cycles)
        self._plan = plan_for(program, self._bound)
        self.pipeline = _VectorPipeline(program, self._bound.schedule,
                                        collect_mix)
        self._inputs: list[tuple[int, list[int]]] = []

    @property
    def regs(self):
        return self.pipeline.regs

    @property
    def cycles(self) -> int:
        return self.pipeline.cycle

    @property
    def retired(self) -> int:
        return self.pipeline.retired

    @property
    def cpi(self) -> float:
        return self.pipeline.cycle / max(1, self.pipeline.retired)

    def write_symbol_words(self, symbol: str, values: list[int],
                           offset: int = 0) -> None:
        """Buffer words for ``symbol + offset``; applied when :meth:`run`
        builds the batch memory image."""
        base = self.program.address_of(symbol) + offset
        self._inputs.append((base, list(values)))

    def read_symbol_words(self, symbol: str, count: int,
                          offset: int = 0) -> list[int]:
        base = self.program.address_of(symbol) + offset
        return self.memory.read_words(base, count)

    def run(self, max_cycles: int = 50_000_000) -> int:
        schedule = self._bound.schedule
        if schedule.cycles > max_cycles:
            raise ScheduleUnavailable(
                f"schedule needs {schedule.cycles} cycles "
                f"> max_cycles={max_cycles}")
        if self.pipeline.halted:
            raise SimulationError("VectorCPU.run is one-shot")
        plan = self._plan
        run = _execute(self.program, plan, 1, [self._inputs],
                       self._operand_isolation, want_state=True)
        tracker = self._tracker
        if tracker is not None:
            energy = _energy_postpass(plan, tracker.params, run)
            trace = energy.total[:, 0].copy()
            totals = energy.totals_for(0)
            counts = dict(schedule.counts)
            counts["noise"] = 0
            if tracker.noise_sigma > 0:
                # Drain the tracker's own pre-drawn buffer + rng so the
                # stream matches the reference draw-for-draw.
                buffered = tracker._noise_buffer[tracker._noise_index:]
                draws = np.concatenate(
                    [buffered,
                     _noise_draws(tracker._noise_rng, tracker.noise_sigma,
                                  max(0, plan.cycles - buffered.size))]
                )[:plan.cycles]
                trace += draws
                totals["noise"] = float(np.cumsum(draws)[-1])
                counts["noise"] = plan.cycles
            components = list(energy.components_for(0)) \
                if tracker.collect_components else []
            tracker.commit_fastpath(
                trace if tracker.keep_trace else [],
                components, totals, counts, plan.cycles)
        # ---- architectural end state ----
        self.pipeline.markers = list(run.markers_for(0))
        final = [int(_resolve(operand, run.out, run.loads)[0])
                 if isinstance(_resolve(operand, run.out, run.loads),
                               np.ndarray)
                 else int(_resolve(operand, run.out, run.loads))
                 for operand in plan.final_regs]
        self.pipeline.regs.load(final)
        rels = set(range(plan.data_rel,
                         plan.data_rel + plan.data_image.size))
        for addr, words in self._inputs:
            rel = (addr >> 2) - plan.w0
            rels.update(range(rel, rel + len(words)))
        rels.update(plan.const_store_rels)
        for wi in run.touched:
            rels.add(int(wi[0]))
        self.memory._words = {plan.w0 + rel: int(run.memmat[0, rel])
                              for rel in sorted(rels)}
        self.pipeline._finish()
        return self.pipeline.cycle
