"""Five-stage in-order pipeline (IF, ID, EX, MEM, WB).

This is the paper's target micro-architecture: a simple five-stage pipelined
32-bit embedded core (ARM7-TDMI-class) running the integer SimpleScalar-like
ISA, augmented with the secure bit.  Features:

* full forwarding (EX/MEM -> EX and MEM/WB -> EX),
* one-cycle load-use interlock,
* branches and jumps resolved in EX with a two-cycle squash on redirect,
* write-before-read register file (WB writes are visible to ID in the same
  cycle).

Timing is *data-independent by construction* — stalls and flushes depend only
on the instruction stream, never on operand values — so two runs of the same
program on different data are cycle-aligned.  That property is what makes the
differential energy traces of the paper (Figs. 7-11) well-defined.

Every cycle the pipeline reports its activity to an optional energy tracker
(see :mod:`repro.energy.tracker`):

* the fetched instruction word (instruction bus),
* register-file port activity,
* EX-stage operand/result values plus the functional-unit class,
* MEM-stage data-bus value and access type,
* the contents latched into each pipeline register, with the secure bit of
  the instruction occupying it,
* the WB value (for the secure dummy-capacitance termination).
"""

from __future__ import annotations

from typing import Optional

from ..isa.encoding import encode
from ..isa.instructions import Format, Instruction
from ..isa.program import Program
from .alu import alu_execute
from .exceptions import CycleLimitExceeded
from .memory import Memory
from .regfile import RegisterFile

_WORD_MASK = 0xFFFF_FFFF

#: Stores to this byte address are phase markers: the pipeline records
#: (cycle, value) pairs instead of touching RAM.  Programs use markers to
#: delimit DES phases (rounds, key permutation, ...) so experiments can
#: window their energy traces precisely.
MARKER_ADDR = 0x0000_FF00

#: Shared bubble instruction occupying squashed/stalled slots.
BUBBLE = Instruction("nop")


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class _IFID:
    __slots__ = ("ins", "iword", "pc")

    def __init__(self, ins: Instruction = BUBBLE, iword: int = 0,
                 pc: int = -1):
        self.ins = ins
        self.iword = iword
        self.pc = pc


class _IDEX:
    __slots__ = ("ins", "a", "b", "a_src", "b_src", "store_val", "store_src",
                 "pc")

    def __init__(self, ins: Instruction = BUBBLE):
        self.ins = ins
        self.a = 0
        self.b = 0
        self.a_src: Optional[int] = None
        self.b_src: Optional[int] = None
        self.store_val = 0
        self.store_src: Optional[int] = None
        self.pc = -1


class _EXMEM:
    __slots__ = ("ins", "alu_out", "store_val", "pc")

    def __init__(self, ins: Instruction = BUBBLE, alu_out: int = 0,
                 store_val: int = 0, pc: int = -1):
        self.ins = ins
        self.alu_out = alu_out
        self.store_val = store_val
        self.pc = pc


class _MEMWB:
    __slots__ = ("ins", "value", "pc")

    def __init__(self, ins: Instruction = BUBBLE, value: int = 0,
                 pc: int = -1):
        self.ins = ins
        self.value = value
        self.pc = pc


class Pipeline:
    """Cycle-accurate five-stage pipeline over a loaded program image."""

    def __init__(self, program: Program, memory: Optional[Memory] = None,
                 tracker=None, operand_isolation: bool = True,
                 collect_mix: bool = False):
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.memory.load_image(program.data_base, program.data)
        self.regs = RegisterFile()
        self.tracker = tracker
        #: Gate ID-stage reads of registers the forwarding network will
        #: supply (see _decode).  Disabling this reproduces the stale-
        #: register side channel the ablation-isolation experiment shows.
        self.operand_isolation = operand_isolation

        self._text = program.text
        self._text_base = program.text_base
        # Pre-encode instruction words once: the fetch bus energy model needs
        # the bit pattern every cycle.
        self._iwords = [encode(ins) & _WORD_MASK for ins in program.text]

        self.pc = program.entry
        self.if_id = _IFID()
        self.id_ex = _IDEX()
        self.ex_mem = _EXMEM()
        self.mem_wb = _MEMWB()

        self.cycle = 0
        self.retired = 0
        self.halted = False
        self._halt_in_flight = False
        #: (cycle, value) pairs recorded by stores to MARKER_ADDR.
        self.markers: list[tuple[int, int]] = []
        # -- performance counters --
        self.stall_cycles = 0
        self.squashed_instructions = 0
        self.branches_executed = 0
        self.branches_taken = 0
        self.loads_executed = 0
        self.stores_executed = 0
        self.secure_retired = 0
        #: Dynamic instruction mix, (op, secure) -> retired count.  Only
        #: collected when requested (the observability layer asks for it);
        #: the default path pays a single attribute test per retirement.
        self._mix: Optional[dict[tuple[str, bool], int]] = \
            {} if collect_mix else None

    @property
    def stats(self) -> dict[str, int | float]:
        """Performance-counter snapshot."""
        return {
            "cycles": self.cycle,
            "retired": self.retired,
            "cpi": self.cycle / max(1, self.retired),
            "stall_cycles": self.stall_cycles,
            "squashed_instructions": self.squashed_instructions,
            "branches_executed": self.branches_executed,
            "branches_taken": self.branches_taken,
            "loads_executed": self.loads_executed,
            "stores_executed": self.stores_executed,
            "secure_retired": self.secure_retired,
            "secure_fraction_dynamic":
                self.secure_retired / max(1, self.retired),
        }

    @property
    def opcode_mix(self) -> dict[tuple[str, bool], int]:
        """Retired-instruction mix as ``(op, secure) -> count``.

        Empty unless the pipeline was built with ``collect_mix=True``.
        """
        return dict(self._mix) if self._mix is not None else {}

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the machine by one clock cycle."""
        if self.halted:
            return
        tracker = self.tracker
        if tracker is not None:
            tracker.begin_cycle()

        regs = self.regs
        mem_wb = self.mem_wb
        ex_mem = self.ex_mem
        id_ex = self.id_ex
        if_id = self.if_id

        # ---------------- WB ----------------
        wb_ins = mem_wb.ins
        wb_dest = wb_ins.dest
        reg_writes = 0
        if wb_dest is not None:
            regs.write(wb_dest, mem_wb.value)
            reg_writes = 1
        if wb_ins.spec.halts:
            self.halted = True
        if wb_ins is not BUBBLE:
            self.retired += 1
            if self._mix is not None:
                mix_key = (wb_ins.op, wb_ins.secure)
                self._mix[mix_key] = self._mix.get(mix_key, 0) + 1
            if wb_ins.secure:
                self.secure_retired += 1
            if wb_ins.spec.is_load:
                self.loads_executed += 1
            elif wb_ins.spec.is_store:
                self.stores_executed += 1
        if tracker is not None:
            tracker.wb_stage(wb_ins, mem_wb.value, mem_wb.pc)

        # ---------------- MEM ----------------
        mem_ins = ex_mem.ins
        mem_spec = mem_ins.spec
        new_mem_wb = _MEMWB(mem_ins, ex_mem.alu_out, ex_mem.pc)
        bus_value = 0
        bus_active = False
        if mem_spec.is_load:
            address = ex_mem.alu_out
            if mem_spec.width == 4:
                value = self.memory.read_word(address)
            else:
                value = self.memory.read_byte(address)
                if mem_spec.signed_load and value & 0x80:
                    value |= 0xFFFF_FF00
            new_mem_wb.value = value
            bus_value = value
            bus_active = True
        elif mem_spec.is_store:
            address = ex_mem.alu_out
            if address == MARKER_ADDR:
                self.markers.append((self.cycle, ex_mem.store_val))
            elif mem_spec.width == 4:
                self.memory.write_word(address, ex_mem.store_val)
            else:
                self.memory.write_byte(address, ex_mem.store_val)
            bus_value = ex_mem.store_val
            bus_active = True
        if tracker is not None:
            tracker.mem_stage(mem_ins, bus_value, bus_active, ex_mem.pc)

        # ---------------- EX ----------------
        ex_ins = id_ex.ins
        ex_spec = ex_ins.spec
        a, b = id_ex.a, id_ex.b
        store_val = id_ex.store_val
        # Forwarding: EX/MEM result has priority over MEM/WB.
        fwd_mem_dest = mem_ins.dest if not mem_spec.is_load else None
        fwd_wb_dest = wb_dest
        if id_ex.a_src is not None and id_ex.a_src != 0:
            if id_ex.a_src == fwd_mem_dest:
                a = ex_mem.alu_out
            elif id_ex.a_src == fwd_wb_dest:
                a = mem_wb.value
        if id_ex.b_src is not None and id_ex.b_src != 0:
            if id_ex.b_src == fwd_mem_dest:
                b = ex_mem.alu_out
            elif id_ex.b_src == fwd_wb_dest:
                b = mem_wb.value
        if id_ex.store_src is not None and id_ex.store_src != 0:
            if id_ex.store_src == fwd_mem_dest:
                store_val = ex_mem.alu_out
            elif id_ex.store_src == fwd_wb_dest:
                store_val = mem_wb.value
        # Loads forwarded from MEM/WB only (load-use interlock guarantees the
        # producing load is at least two stages ahead).

        alu_out = alu_execute(ex_spec.alu, a, b)
        if ex_ins.op in ("jal", "jalr"):
            alu_out = (id_ex.pc + 4) & _WORD_MASK

        redirect: Optional[int] = None
        if ex_spec.is_branch:
            self.branches_executed += 1
            if self._branch_taken(ex_ins.op, a, b):
                self.branches_taken += 1
                redirect = ex_ins.target
        elif ex_spec.is_jump:
            if ex_ins.op in ("j", "jal"):
                redirect = ex_ins.target
            else:  # jr / jalr
                redirect = a
        if tracker is not None:
            tracker.ex_stage(ex_ins, a, b, alu_out, id_ex.pc)

        new_ex_mem = _EXMEM(ex_ins, alu_out, store_val, id_ex.pc)

        # ---------------- ID ----------------
        id_ins = if_id.ins
        stall = False
        # Load-use interlock: the instruction currently in EX is a load whose
        # destination is a source of the instruction being decoded.
        if ex_spec.is_load:
            load_dest = ex_ins.dest
            if load_dest is not None and load_dest != 0 \
                    and load_dest in id_ins.sources:
                stall = True

        reg_reads = 0
        if stall:
            self.stall_cycles += 1
            new_id_ex = _IDEX(BUBBLE)
        else:
            new_id_ex, reg_reads = self._decode(id_ins, if_id.pc,
                                                ex_ins.dest, mem_ins.dest)
        if tracker is not None:
            # Port attribution: reads belong to the decoding instruction,
            # the write to the retiring one.
            tracker.regfile_access(reg_reads, reg_writes,
                                   id_ins, if_id.pc, wb_ins, mem_wb.pc)

        # ---------------- IF ----------------
        fetch_active = False
        iword = 0
        if stall:
            new_if_id = if_id  # hold
            next_pc = self.pc
        elif self._halt_in_flight:
            new_if_id = _IFID()
            next_pc = self.pc
        else:
            index = (self.pc - self._text_base) >> 2
            if 0 <= index < len(self._text):
                ins = self._text[index]
                iword = self._iwords[index]
                new_if_id = _IFID(ins, iword, self.pc)
                fetch_active = True
                if ins.spec.halts:
                    self._halt_in_flight = True
            else:
                # Fetch past the text segment: deliver a bubble.  This only
                # happens transiently in branch shadows; a program that truly
                # runs off the end never retires anything and hits the
                # caller's cycle limit.
                new_if_id = _IFID()
            next_pc = (self.pc + 4) & _WORD_MASK
        if tracker is not None:
            tracker.fetch(iword, fetch_active, new_if_id.ins, new_if_id.pc)

        # ---------------- redirect / squash ----------------
        if redirect is not None:
            next_pc = redirect
            if new_if_id.ins is not BUBBLE:
                self.squashed_instructions += 1
            if new_id_ex.ins is not BUBBLE:
                self.squashed_instructions += 1
            new_if_id = _IFID()
            new_id_ex = _IDEX(BUBBLE)
            # A taken control transfer may re-enter the text segment, so
            # resume fetching even if a halt was (speculatively) fetched.
            self._halt_in_flight = False

        # ---------------- latch commit ----------------
        if tracker is not None:
            tracker.latch(0, (new_if_id.iword,), new_if_id.ins.secure,
                          new_if_id.ins, new_if_id.pc)
            tracker.latch(1, (new_id_ex.a, new_id_ex.b,
                              new_id_ex.store_val), new_id_ex.ins.secure,
                          new_id_ex.ins, new_id_ex.pc)
            tracker.latch(2, (new_ex_mem.alu_out, new_ex_mem.store_val),
                          new_ex_mem.ins.secure,
                          new_ex_mem.ins, new_ex_mem.pc)
            tracker.latch(3, (new_mem_wb.value,), new_mem_wb.ins.secure,
                          new_mem_wb.ins, new_mem_wb.pc)
            tracker.end_cycle()

        self.if_id = new_if_id
        self.id_ex = new_id_ex
        self.ex_mem = new_ex_mem
        self.mem_wb = new_mem_wb
        self.pc = next_pc
        self.cycle += 1

    # ------------------------------------------------------------------

    def _decode(self, ins: Instruction, pc: int, ex_dest, mem_dest):
        """ID stage: read registers and select EX operands.

        Operand isolation: when a source register's value will be supplied
        by the forwarding network (its producer currently sits in EX or
        MEM), the regfile read is suppressed and a zero is latched instead.
        Besides saving the port energy, this prevents the *stale* register
        content — which may be a sensitive value left by an earlier secure
        instruction that reused the register — from transiting the ID/EX
        pipeline latch of an insecure instruction.  The gating control
        depends only on register numbers, so it is data-independent.
        """
        latch = _IDEX(ins)
        latch.pc = pc
        spec = ins.spec
        fmt = spec.fmt
        regs = self.regs
        reads = 0
        isolate = self.operand_isolation

        def read(number: int) -> int:
            nonlocal reads
            if isolate and number and (number == ex_dest
                                       or number == mem_dest):
                return 0  # forwarded at EX; regfile port gated off
            reads += 1
            return regs.read(number)

        if fmt == Format.R3:
            latch.a, latch.a_src = read(ins.rs), ins.rs
            latch.b, latch.b_src = read(ins.rt), ins.rt
        elif fmt == Format.SHIFT:
            latch.a, latch.a_src = read(ins.rt), ins.rt
            latch.b = ins.shamt
        elif fmt == Format.SHIFT_V:
            latch.a, latch.a_src = read(ins.rt), ins.rt
            latch.b, latch.b_src = read(ins.rs), ins.rs
        elif fmt == Format.ARITH_I:
            latch.a, latch.a_src = read(ins.rs), ins.rs
            imm = ins.imm if ins.imm is not None else 0
            # andi/ori/xori zero-extend; the rest sign-extend (Python's mask
            # of a negative int already yields the two's-complement pattern).
            latch.b = imm & 0xFFFF if spec.unsigned_imm else imm & _WORD_MASK
        elif fmt == Format.LOAD:
            latch.a, latch.a_src = read(ins.rs), ins.rs
            latch.b = (ins.imm or 0) & _WORD_MASK
        elif fmt == Format.STORE:
            latch.a, latch.a_src = read(ins.rs), ins.rs
            latch.b = (ins.imm or 0) & _WORD_MASK
            latch.store_val, latch.store_src = read(ins.rt), ins.rt
        elif fmt == Format.BRANCH2:
            latch.a, latch.a_src = read(ins.rs), ins.rs
            latch.b, latch.b_src = read(ins.rt), ins.rt
        elif fmt == Format.BRANCH1:
            latch.a, latch.a_src = read(ins.rs), ins.rs
        elif fmt in (Format.JR, Format.JALR):
            latch.a, latch.a_src = read(ins.rs), ins.rs
        elif fmt == Format.LUI:
            latch.b = ins.imm & 0xFFFF
        return latch, reads

    @staticmethod
    def _branch_taken(op: str, a: int, b: int) -> bool:
        if op == "beq":
            return a == b
        if op == "bne":
            return a != b
        sa = _signed(a)
        if op == "blez":
            return sa <= 0
        if op == "bgtz":
            return sa > 0
        if op == "bltz":
            return sa < 0
        return sa >= 0  # bgez

    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 50_000_000) -> int:
        """Run until halt; returns the cycle count."""
        step = self.step
        while not self.halted:
            if self.cycle >= max_cycles:
                raise CycleLimitExceeded(self.pc, self.cycle, max_cycles)
            step()
        return self.cycle
