"""32-entry register file.

Register 0 is hardwired to zero.  Energy per port access is data-independent
(the paper treats the register file as a memory array with differential
reads), so this module only exposes functional state; port-activity counts
are reported by the pipeline.
"""

from __future__ import annotations

from ..isa.registers import NUM_REGISTERS

_WORD_MASK = 0xFFFF_FFFF


class RegisterFile:
    """Simple 32 x 32-bit register file with $zero hardwired."""

    def __init__(self) -> None:
        self._regs = [0] * NUM_REGISTERS

    def read(self, number: int) -> int:
        return self._regs[number]

    def write(self, number: int, value: int) -> None:
        if number:
            self._regs[number] = value & _WORD_MASK

    def dump(self) -> list[int]:
        return list(self._regs)

    def load(self, values: list[int]) -> None:
        if len(values) != NUM_REGISTERS:
            raise ValueError("register dump must have 32 entries")
        self._regs = [v & _WORD_MASK for v in values]
        self._regs[0] = 0
