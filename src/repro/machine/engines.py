"""Pluggable execution-engine registry.

Engine selection used to be an if/else baked into the harness runner;
this registry makes the backends first-class so a new engine (like the
vectorized trace-batch engine) plugs in without touching every caller:

* :func:`resolve` maps an explicit ``--engine`` argument or the ambient
  ``$REPRO_ENGINE`` variable onto a registered engine name (default
  ``"fast"``), raising :class:`ValueError` for unknown names;
* :class:`EngineSpec` describes one backend: how to build a CPU-like
  executor (``factory``), which engine serves a run the backend declines
  (``fallback`` — walked transitively by the harness runner), which
  engine substitutes when the run needs the per-cycle tracker hooks for
  attribution (``hooked``), and an optional whole-batch entry point
  (``batch``) for engines that natively execute many traces at once.

The registered engines:

========== ============================================= ==========
name       execution model                               fallback
========== ============================================= ==========
fast       schedule replay, one trace per call           reference
reference  cycle-accurate five-stage pipeline            —
vector     schedule replay over a whole NumPy trace      fast
           batch (``[n_traces, ...]`` state arrays)
========== ============================================= ==========

Factories import their backend modules lazily, so importing this module
never drags in NumPy-heavy engine code (and no import cycle forms with
:mod:`repro.machine.fastpath`, which re-exports :func:`resolve` under its
historical ``resolve_engine`` name).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

#: Engine names accepted by ``--engine`` / ``$REPRO_ENGINE``.
ENGINES: tuple[str, ...] = ("fast", "reference", "vector")


@dataclass(frozen=True)
class EngineSpec:
    """One pluggable execution backend.

    ``factory(program, tracker, *, operand_isolation, collect_mix,
    max_cycles)`` returns a CPU-like object (``write_symbol_words`` /
    ``run`` / ``pipeline`` surface); it may raise
    :class:`~repro.machine.fastpath.ScheduleFallback` to decline the run,
    in which case the harness retries on ``fallback`` (transitively).

    ``hooked`` names the engine that substitutes when attribution is
    enabled and this backend cannot drive the per-cycle tracker hooks.

    ``batch(jobs, program, cache_hit)`` — optional — executes a
    homogeneous list of :class:`~repro.harness.engine.SimJob` natively
    and returns their :class:`~repro.harness.engine.JobResult` list, or
    ``None`` to decline (the harness then runs the jobs one by one).
    """

    name: str
    factory: Callable[..., object]
    fallback: Optional[str] = None
    hooked: Optional[str] = None
    batch: Optional[Callable[..., Optional[list]]] = None


_REGISTRY: dict[str, EngineSpec] = {}


def register(spec: EngineSpec) -> None:
    """Register (or replace) an engine backend under ``spec.name``."""
    _REGISTRY[spec.name] = spec


def get(name: str) -> EngineSpec:
    """The registered :class:`EngineSpec` for ``name``."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(f"unknown engine {name!r} "
                         f"(expected one of {names()})")
    return spec


def names() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def resolve(engine: Optional[str] = None) -> str:
    """Effective engine name: explicit argument, else ``$REPRO_ENGINE``,
    else ``"fast"``.  Unknown names raise :class:`ValueError`."""
    if engine:
        if engine not in _REGISTRY:
            raise ValueError(f"unknown engine {engine!r} "
                             f"(expected one of {names()})")
        return engine
    configured = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if configured:
        if configured not in _REGISTRY:
            raise ValueError(f"unknown REPRO_ENGINE={configured!r} "
                             f"(expected one of {names()})")
        return configured
    return "fast"


# ---------------------------------------------------------------------------
# Built-in backends (lazy imports: no engine code loads until first use)
# ---------------------------------------------------------------------------

def _fast_factory(program, tracker, *, operand_isolation: bool,
                  collect_mix: bool, max_cycles: int):
    from . import fastpath

    bound = fastpath.bound_schedule_for(program,
                                        operand_isolation=operand_isolation,
                                        max_cycles=max_cycles)
    return fastpath.ReplayCPU(program, bound, tracker=tracker,
                              operand_isolation=operand_isolation,
                              collect_mix=collect_mix)


def _reference_factory(program, tracker, *, operand_isolation: bool,
                       collect_mix: bool, max_cycles: int):
    from .cpu import CPU

    return CPU(program, tracker=tracker,
               operand_isolation=operand_isolation, collect_mix=collect_mix)


def _vector_factory(program, tracker, *, operand_isolation: bool,
                    collect_mix: bool, max_cycles: int):
    from . import vector

    return vector.VectorCPU(program, tracker=tracker,
                            operand_isolation=operand_isolation,
                            collect_mix=collect_mix, max_cycles=max_cycles)


def _vector_batch(jobs: Sequence, program, cache_hit=None) -> Optional[list]:
    from . import vector

    return vector.run_job_batch(jobs, program, cache_hit=cache_hit)


register(EngineSpec("fast", _fast_factory, fallback="reference"))
register(EngineSpec("reference", _reference_factory))
register(EngineSpec("vector", _vector_factory, fallback="fast",
                    hooked="fast", batch=_vector_batch))
