"""Micro-architecture layer: memory, register file, ALU, pipeline, CPU."""

from .alu import alu_execute
from .cpu import CPU, run_to_halt
from .exceptions import CpuError, MemoryError_, SimulationError
from .fastpath import (CycleSchedule, ReplayCPU, ReplayPipeline,
                       ScheduleDivergence, ScheduleFallback,
                       ScheduleUnavailable, record_schedule, resolve_engine)
from .interpreter import Interpreter, run_functional
from .memory import Memory
from .pipeline import BUBBLE, Pipeline
from .regfile import RegisterFile

__all__ = [
    "BUBBLE", "CPU", "CpuError", "CycleSchedule", "Memory", "MemoryError_",
    "Pipeline", "Interpreter", "RegisterFile", "ReplayCPU",
    "ReplayPipeline", "ScheduleDivergence", "ScheduleFallback",
    "ScheduleUnavailable", "SimulationError", "alu_execute",
    "record_schedule", "resolve_engine", "run_functional", "run_to_halt",
]
