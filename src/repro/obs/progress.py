"""Live progress telemetry for long-running campaigns.

A million-trace TVLA run is silent for hours with only post-hoc
manifests to show for it.  This module adds the mid-flight view:

* :class:`ProgressSink` — an opt-in JSON-lines writer (stderr or an
  append-only file) that receives one record per heartbeat;
* :class:`ProgressReporter` — rate-limited heartbeats carrying jobs
  done/failed/retried, traces/sec, ETA and arbitrary statistic
  watermarks (e.g. the current max |t|), published both to the sink and
  to the metrics registry when observability is enabled;
* a module-level *current reporter* stack so the resilience layer can
  report failures/retries without threading a reporter through every
  call signature (mirrors the obs context stack).

Everything here is off by default: with ``REPRO_PROGRESS`` unset and no
reporter constructed, the engine's behavior — and the energy traces —
are bit-identical to a build without this module.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import sys
import time
from typing import Callable, Optional, TextIO

logger = logging.getLogger("repro.obs.progress")

#: Opt-in env var: ``-`` or ``stderr`` streams heartbeats to stderr, any
#: other value is treated as a path opened in append mode.
PROGRESS_ENV = "REPRO_PROGRESS"
#: Minimum seconds between heartbeats (float); default 1.0.
INTERVAL_ENV = "REPRO_PROGRESS_INTERVAL"

DEFAULT_INTERVAL_S = 1.0


class ProgressSink:
    """Writes heartbeat records as JSON lines, one object per line.

    ``target`` is ``"-"``/``"stderr"`` for stderr or a filesystem path
    (opened lazily in append mode so parallel campaigns interleave whole
    lines rather than truncating each other).

    Telemetry must never kill the campaign it narrates: a consumer that
    goes away mid-run (``tail`` killed → EPIPE, disk full, file deleted)
    disables the sink after the first write error — subsequent records
    are counted in :attr:`dropped` and the batch runs to completion.
    """

    def __init__(self, target: str):
        self.target = target
        self._stream: Optional[TextIO] = None
        self._owns_stream = False
        #: Set after the first write error; the sink is dead from then on.
        self.disabled = False
        #: Heartbeats discarded because the sink was disabled.
        self.dropped = 0

    def _ensure_stream(self) -> TextIO:
        if self._stream is None:
            if self.target in ("-", "stderr"):
                self._stream = sys.stderr
            else:
                self._stream = open(self.target, "a", encoding="utf-8")
                self._owns_stream = True
        return self._stream

    def emit(self, record: dict) -> None:
        if self.disabled:
            self.dropped += 1
            return
        try:
            stream = self._ensure_stream()
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            stream.flush()
        except (OSError, ValueError) as error:
            # ValueError covers writes to a stream something else closed.
            self.disabled = True
            self.dropped += 1
            logger.warning("progress sink %s: write failed (%s); progress "
                           "telemetry disabled for the rest of the run",
                           self.target, error)
            from repro import obs

            if obs.enabled():
                obs.counter("progress_sink_errors",
                            "progress sinks disabled after a write error") \
                    .inc()
            self.close()

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass  # a broken pipe may refuse even the close flush
        self._stream = None
        self._owns_stream = False


class ProgressReporter:
    """Heartbeat emitter for a batch of ``total`` jobs.

    ``job_done(done, total)`` matches the engine's progress-callback
    signature, so a reporter can be passed anywhere a plain callback is
    accepted.  Heartbeats are rate-limited to one per ``interval_s``
    except for the forced initial/final beats and ``heartbeat(force=True)``
    at stream checkpoints.
    """

    def __init__(self, total: int, label: str = "batch",
                 sink: Optional[ProgressSink] = None,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 clock: Callable[[], float] = time.monotonic):
        self.total = int(total)
        self.label = label
        self.sink = sink
        self.interval_s = float(interval_s)
        self._clock = clock
        self._start = clock()
        self._last_emit: Optional[float] = None
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.watermarks: dict[str, float] = {}
        self.heartbeats = 0
        self._finished = False

    # -- engine-facing hooks -------------------------------------------
    def job_done(self, done: int, total: Optional[int] = None) -> None:
        """Progress callback: ``done`` jobs out of ``total`` completed."""
        self.done = int(done)
        if total is not None:
            self.total = int(total)
        self.heartbeat()

    def note_failure(self) -> None:
        self.failed += 1
        self.heartbeat()

    def note_retry(self) -> None:
        self.retried += 1

    def set_watermark(self, name: str, value: float) -> None:
        self.watermarks[name] = float(value)

    # -- emission ------------------------------------------------------
    def _record(self, event: str) -> dict:
        elapsed = max(self._clock() - self._start, 0.0)
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = max(self.total - self.done, 0)
        eta = remaining / rate if rate > 0 else None
        record = {
            "event": event,
            "label": self.label,
            "done": self.done,
            "failed": self.failed,
            "retried": self.retried,
            "total": self.total,
            "elapsed_s": round(elapsed, 6),
            "rate_per_s": round(rate, 3),
            "eta_s": round(eta, 3) if eta is not None else None,
        }
        for name, value in sorted(self.watermarks.items()):
            record[name] = value if abs(value) != float("inf") \
                else repr(value)
        return record

    def heartbeat(self, force: bool = False) -> Optional[dict]:
        """Emit a heartbeat if the interval elapsed (or ``force``)."""
        now = self._clock()
        if not force and self._last_emit is not None \
                and now - self._last_emit < self.interval_s:
            return None
        self._last_emit = now
        self.heartbeats += 1
        record = self._record("heartbeat")
        if self.sink is not None:
            self.sink.emit(record)
        # Imported lazily: this module is re-exported by the package
        # __init__, which is still initializing at our import time.
        from repro import obs

        if obs.enabled():
            obs.counter("progress_heartbeats",
                        "progress heartbeats emitted, by batch label") \
                .inc(label=self.label)
        return record

    def finish(self) -> dict:
        """Emit the terminal record (always, regardless of interval)."""
        if self._finished:
            return self._record("finished")
        self._finished = True
        self.heartbeats += 1
        record = self._record("finished")
        if self.sink is not None:
            self.sink.emit(record)
            self.sink.close()
        return record


# -- current-reporter stack ------------------------------------------------
# The resilience layer sits several frames below whoever owns the
# reporter; a context-scoped stack lets it report failures/retries
# without changing every signature in between.

_reporter_stack: list[ProgressReporter] = []


def current() -> Optional[ProgressReporter]:
    """The innermost active reporter, or ``None``."""
    return _reporter_stack[-1] if _reporter_stack else None


@contextlib.contextmanager
def active(reporter: Optional[ProgressReporter]):
    """Make ``reporter`` the current reporter for the dynamic extent.

    ``None`` is accepted and is a no-op, so call sites can push
    unconditionally.
    """
    if reporter is None:
        yield None
        return
    _reporter_stack.append(reporter)
    try:
        yield reporter
    finally:
        _reporter_stack.pop()


def sink_from_env() -> Optional[ProgressSink]:
    target = os.environ.get(PROGRESS_ENV, "").strip()
    if not target:
        return None
    return ProgressSink(target)


def interval_from_env() -> float:
    raw = os.environ.get(INTERVAL_ENV, "").strip()
    if not raw:
        return DEFAULT_INTERVAL_S
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return DEFAULT_INTERVAL_S


def reporter_from_env(total: int, label: str = "batch") \
        -> Optional[ProgressReporter]:
    """Build a reporter from ``REPRO_PROGRESS`` — or ``None`` when the
    sink is not configured *or* a reporter is already active (a streaming
    campaign's outer reporter owns the batch; nested ``run_jobs`` chunks
    must not double-count)."""
    if current() is not None:
        return None
    sink = sink_from_env()
    if sink is None:
        return None
    return ProgressReporter(total, label=label, sink=sink,
                            interval_s=interval_from_env())
