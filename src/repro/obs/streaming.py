"""One-pass, bounded-memory statistics for million-trace campaigns.

The attack statistics in :mod:`repro.attacks.stats` operate on a full
``(n_traces, n_cycles)`` matrix — fine for a hundred traces, hopeless for
10⁶.  This module provides the streaming twins: accumulators that fold
one trace at a time into O(n_cycles) state (independent of trace count)
and support an **associative merge**, so sharded accumulators built by
``run_jobs`` workers (or chunks of a long campaign) combine into exactly
the statistic a single pass would have produced:

* :class:`MeanAccumulator` — per-cycle running mean (difference-of-means
  DPA needs nothing more);
* :class:`WelfordAccumulator` — per-cycle mean + M2 (Welford 1962;
  merged with the Chan/Golub/LeVeque parallel update), giving sample
  variance with any ``ddof``;
* :class:`WelchTAccumulator` — two Welford groups and the per-cycle
  Welch *t*-statistic, semantics matching
  :func:`repro.attacks.stats.welch_t_statistic` plus the
  deterministic-simulator "definite leak" ±inf corner of
  :func:`repro.attacks.tvla.fixed_vs_random`;
* :class:`CorrelationAccumulator` — online per-cycle Pearson correlation
  between a scalar prediction and the trace (streaming CPA);
* :class:`DisclosureCurve` — the "traces-to-disclosure" headline metric:
  a statistic watermark sampled at trace-count checkpoints, and the
  minimum trace count from which the device stays disclosed.

Determinism contract: ``update`` order fixes the floating-point result
bit-for-bit; ``merge`` is mathematically associative and commutative but
reorders float accumulation, so a sharded campaign equals the one-pass
result only to documented tolerance (``MERGE_RTOL``).  The engine's
chunked streaming path (:func:`repro.harness.engine.run_stream`) updates
in submission order, so ``jobs=1`` and ``jobs=N`` are **bit-identical**
there — the same gate discipline as attribution snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Relative tolerance within which a sharded ``merge`` result is
#: guaranteed to match the single-pass accumulation (float reassociation
#: only; the estimators are algebraically identical).
MERGE_RTOL = 1e-9


def _as_row(values) -> np.ndarray:
    row = np.asarray(values, dtype=np.float64)
    if row.ndim != 1:
        raise ValueError(f"expected a 1-D per-cycle vector, got shape "
                         f"{row.shape}")
    return row


class MeanAccumulator:
    """Per-cycle running mean over incrementally observed traces.

    Cycle count is fixed by the first ``update``; later traces must be
    cycle-aligned (the same contract the batch matrix stack enforces).
    """

    __slots__ = ("count", "mean")

    def __init__(self):
        self.count: int = 0
        self.mean: Optional[np.ndarray] = None

    def update(self, values) -> None:
        row = _as_row(values)
        if self.mean is None:
            self.count = 1
            self.mean = row.copy()
            return
        if row.shape != self.mean.shape:
            raise ValueError("trace is not cycle-aligned with accumulator")
        self.count += 1
        self.mean += (row - self.mean) / self.count

    def merge(self, other: "MeanAccumulator") -> None:
        """Fold ``other`` into this accumulator (associative)."""
        if other.mean is None:
            return
        if self.mean is None:
            self.count = other.count
            self.mean = other.mean.copy()
            return
        if other.mean.shape != self.mean.shape:
            raise ValueError("accumulators are not cycle-aligned")
        total = self.count + other.count
        self.mean += (other.mean - self.mean) * (other.count / total)
        self.count = total


class WelfordAccumulator:
    """Per-cycle streaming mean/variance (Welford; Chan parallel merge)."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self):
        self.count: int = 0
        self.mean: Optional[np.ndarray] = None
        self.m2: Optional[np.ndarray] = None

    def update(self, values) -> None:
        row = _as_row(values)
        if self.mean is None:
            self.count = 1
            self.mean = row.copy()
            self.m2 = np.zeros_like(row)
            return
        if row.shape != self.mean.shape:
            raise ValueError("trace is not cycle-aligned with accumulator")
        self.count += 1
        delta = row - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (row - self.mean)

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold ``other`` into this accumulator (Chan/Golub/LeVeque)."""
        if other.mean is None:
            return
        if self.mean is None:
            self.count = other.count
            self.mean = other.mean.copy()
            self.m2 = other.m2.copy()
            return
        if other.mean.shape != self.mean.shape:
            raise ValueError("accumulators are not cycle-aligned")
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta \
            * (self.count * other.count / total)
        self.mean += delta * (other.count / total)
        self.count = total

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Per-cycle variance; zeros when fewer than ``ddof + 1`` traces."""
        if self.m2 is None or self.count <= ddof:
            shape = self.m2.shape if self.m2 is not None else (0,)
            return np.zeros(shape)
        return self.m2 / (self.count - ddof)


def merged(a, b):
    """``merge(a, b)`` as a pure function: a fresh accumulator holding
    ``a`` folded with ``b``, leaving both inputs untouched.  Works for
    every accumulator class in this module (anything with ``merge``)."""
    out = type(a)()
    out.merge(a)
    out.merge(b)
    return out


class WelchTAccumulator:
    """Streaming per-cycle Welch *t* between two trace populations.

    ``update(trace, group)`` files a trace under group 0 or 1; the
    statistic matches :func:`repro.attacks.stats.welch_t_statistic`
    (``mean(group 1) − mean(group 0)`` over the pooled standard error,
    zeros until both groups hold ≥ 2 traces).  :meth:`t_statistic` with
    ``definite_leaks=True`` additionally reports the deterministic-
    simulator corner as ±inf: both groups at exactly zero variance with
    different means is a definite leak, not the 0 the plain formula
    yields (same rule as :func:`repro.attacks.tvla.fixed_vs_random`).
    """

    __slots__ = ("groups",)

    def __init__(self):
        self.groups = (WelfordAccumulator(), WelfordAccumulator())

    @property
    def count(self) -> int:
        return self.groups[0].count + self.groups[1].count

    def update(self, values, group: int) -> None:
        if group not in (0, 1):
            raise ValueError(f"group must be 0 or 1, got {group}")
        self.groups[group].update(values)

    def merge(self, other: "WelchTAccumulator") -> None:
        self.groups[0].merge(other.groups[0])
        self.groups[1].merge(other.groups[1])

    def mean_difference(self) -> np.ndarray:
        """Per-cycle ``mean(group 1) − mean(group 0)``; zeros if a group
        is empty (difference-of-means semantics)."""
        g0, g1 = self.groups
        if g0.mean is None or g1.mean is None:
            for g in (g0, g1):
                if g.mean is not None:
                    return np.zeros_like(g.mean)
            return np.zeros(0)
        return g1.mean - g0.mean

    def t_statistic(self, definite_leaks: bool = False) -> np.ndarray:
        g0, g1 = self.groups
        if g0.count < 2 or g1.count < 2:
            return np.zeros_like(self.mean_difference())
        diff = g1.mean - g0.mean
        denom = np.sqrt(g1.variance(ddof=1) / g1.count
                        + g0.variance(ddof=1) / g0.count)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(denom > 0, diff / denom, 0.0)
        if definite_leaks:
            # Exact-zero M2 in both groups means every trace of each
            # group was identical; a nonzero mean difference is then an
            # infinite-t leak in the limit.
            definite = (g0.m2 == 0) & (g1.m2 == 0) & (diff != 0)
            t = np.where(definite, np.copysign(np.inf, diff), t)
        return t

    def max_abs_t(self, definite_leaks: bool = True) -> float:
        t = self.t_statistic(definite_leaks=definite_leaks)
        return float(np.abs(t).max()) if t.size else 0.0


class CorrelationAccumulator:
    """Online per-cycle Pearson correlation: scalar prediction × trace.

    Accumulates the raw cross-moments (n, Σh, Σh², Σt, Σt², Σht per
    cycle) so the correlation is computed on demand in O(n_cycles).
    Matches :func:`repro.attacks.cpa.correlation_trace` semantics:
    zero-variance cycles (or predictions) read as correlation 0.
    """

    __slots__ = ("count", "sum_h", "sum_h2", "sum_t", "sum_t2", "sum_ht")

    def __init__(self):
        self.count: int = 0
        self.sum_h: float = 0.0
        self.sum_h2: float = 0.0
        self.sum_t: Optional[np.ndarray] = None
        self.sum_t2: Optional[np.ndarray] = None
        self.sum_ht: Optional[np.ndarray] = None

    def update(self, values, prediction: float) -> None:
        row = _as_row(values)
        h = float(prediction)
        if self.sum_t is None:
            self.sum_t = np.zeros_like(row)
            self.sum_t2 = np.zeros_like(row)
            self.sum_ht = np.zeros_like(row)
        elif row.shape != self.sum_t.shape:
            raise ValueError("trace is not cycle-aligned with accumulator")
        self.count += 1
        self.sum_h += h
        self.sum_h2 += h * h
        self.sum_t += row
        self.sum_t2 += row * row
        self.sum_ht += h * row

    def merge(self, other: "CorrelationAccumulator") -> None:
        if other.sum_t is None:
            return
        if self.sum_t is None:
            self.count = other.count
            self.sum_h = other.sum_h
            self.sum_h2 = other.sum_h2
            self.sum_t = other.sum_t.copy()
            self.sum_t2 = other.sum_t2.copy()
            self.sum_ht = other.sum_ht.copy()
            return
        if other.sum_t.shape != self.sum_t.shape:
            raise ValueError("accumulators are not cycle-aligned")
        self.count += other.count
        self.sum_h += other.sum_h
        self.sum_h2 += other.sum_h2
        self.sum_t += other.sum_t
        self.sum_t2 += other.sum_t2
        self.sum_ht += other.sum_ht

    def correlation(self) -> np.ndarray:
        """Per-cycle Pearson ρ; zeros where either side is constant."""
        if self.sum_t is None or self.count < 2:
            return np.zeros(self.sum_t.shape if self.sum_t is not None
                            else (0,))
        n = self.count
        h_ss = n * self.sum_h2 - self.sum_h * self.sum_h
        t_ss = n * self.sum_t2 - self.sum_t * self.sum_t
        # Float cancellation can push a constant series epsilon-negative.
        h_ss = max(h_ss, 0.0)
        t_ss = np.maximum(t_ss, 0.0)
        numerator = n * self.sum_ht - self.sum_h * self.sum_t
        denominator = np.sqrt(h_ss * t_ss)
        with np.errstate(divide="ignore", invalid="ignore"):
            rho = np.where(denominator > 1e-12, numerator / denominator, 0.0)
        return rho


@dataclass
class DisclosureCurve:
    """Traces-to-disclosure: a statistic sampled at trace-count checkpoints.

    ``mode="t"`` treats ``value >= threshold`` as disclosed (Welch-|t|
    against the TVLA 4.5 bar); ``mode="rank"`` treats
    ``value <= threshold`` as disclosed (key rank dropping to 0).  The
    headline number, :attr:`disclosure_traces`, is the smallest recorded
    trace count from which the device is disclosed *at every later
    checkpoint too* — a rank that luckily touches 0 once and bounces
    back is not a disclosure.
    """

    threshold: float
    mode: str = "t"
    checkpoints: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __post_init__(self):
        if self.mode not in ("t", "rank"):
            raise ValueError(f"mode must be 't' or 'rank', got {self.mode!r}")

    def record(self, traces: int, value: float) -> None:
        if self.checkpoints and traces <= self.checkpoints[-1]:
            raise ValueError("checkpoints must be strictly increasing")
        self.checkpoints.append(int(traces))
        self.values.append(float(value))

    def disclosed(self, value: float) -> bool:
        if self.mode == "t":
            return value >= self.threshold
        return value <= self.threshold

    @property
    def disclosure_traces(self) -> Optional[int]:
        """Minimum recorded trace count of sustained disclosure, or
        ``None`` when the device never disclosed within the budget."""
        first: Optional[int] = None
        for traces, value in zip(self.checkpoints, self.values):
            if self.disclosed(value):
                if first is None:
                    first = traces
            else:
                first = None
        return first

    @property
    def final_value(self) -> float:
        return self.values[-1] if self.values else 0.0

    def to_dict(self) -> dict:
        values = [v if np.isfinite(v) else (float("inf") if v > 0
                                            else float("-inf"))
                  for v in self.values]
        return {
            "mode": self.mode,
            "threshold": self.threshold,
            "checkpoints": list(self.checkpoints),
            # JSON has no inf; the manifest writer stringifies them.
            "values": [v if np.isfinite(v) else repr(v) for v in values],
            "disclosure_traces": self.disclosure_traces,
        }


def stream_rows(traces: Sequence, accumulator, groups: Optional[Sequence[int]]
                = None):
    """Feed matrix rows (or any iterable of per-cycle vectors) through an
    accumulator in order; the refactor seam the batch statistics in
    :mod:`repro.attacks.stats` use for their ``streaming=True`` path."""
    if groups is None:
        for row in traces:
            accumulator.update(row)
    else:
        for row, group in zip(traces, groups):
            accumulator.update(row, int(group))
    return accumulator
