"""Prometheus text-format exposition of a registry snapshot.

:func:`render_prometheus` turns the JSON snapshot a
:class:`~repro.obs.registry.MetricsRegistry` produces into the standard
``text/plain; version=0.0.4`` exposition format — ``# HELP``/``# TYPE``
headers, one sample per series, label values escaped per the spec
(``\\``, ``"``, newline), histograms expanded into cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``.  The daemon serves
it from ``GET /metrics?format=prometheus`` and ``repro obs summarize
--format prom`` renders manifests with it, so any Prometheus-compatible
scraper can consume the service SLOs without an adapter.

:func:`parse_prometheus` is the deliberately small inverse used by the
test suite and the CI smoke: it parses samples (with full label-escape
handling) back into ``(name, labels) -> value`` rows, and
:func:`samples_from_snapshot` computes the same rows straight from the
JSON snapshot — the two must agree exactly, which is the round-trip
oracle asserting the renderer never drops or distorts a series.
"""

from __future__ import annotations

import math
import re
from typing import Iterator, Optional

#: Content type of the exposition format this module renders.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_TYPE_BY_KIND = {"counter": "counter", "gauge": "gauge",
                 "histogram": "histogram"}

#: Sample key: metric name plus the sorted, escaped-free label items.
SampleKey = tuple[str, tuple[tuple[str, str], ...]]


def sanitize_name(name: str) -> str:
    """Coerce a metric/label name into the Prometheus charset."""
    name = _INVALID_NAME_CHARS.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Canonical sample-value rendering (integers bare, floats ``repr``,
    specials as ``+Inf``/``-Inf``/``NaN``)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(value)


def _metric_samples(name: str, entry: dict) -> Iterator[
        tuple[str, tuple[tuple[str, str], ...], float]]:
    """Yield ``(sample_name, sorted_label_items, value)`` rows of one
    snapshot entry — the single source of truth shared by the renderer
    and :func:`samples_from_snapshot`."""
    metric = sanitize_name(name)
    kind = entry.get("kind")
    for series in entry.get("series", []):
        labels = {sanitize_name(key): str(value) for key, value
                  in (series.get("labels") or {}).items()}
        if kind == "histogram":
            bounds = [float(bound) for bound in entry.get("buckets", [])]
            counts = list(series.get("counts", []))
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += int(count)
                yield (metric + "_bucket",
                       tuple(sorted({**labels,
                                     "le": format_value(bound)}.items())),
                       float(cumulative))
            total = int(series.get("count", 0))
            yield (metric + "_bucket",
                   tuple(sorted({**labels, "le": "+Inf"}.items())),
                   float(total))
            yield (metric + "_sum", tuple(sorted(labels.items())),
                   float(series.get("sum", 0.0)))
            yield (metric + "_count", tuple(sorted(labels.items())),
                   float(total))
        else:
            yield (metric, tuple(sorted(labels.items())),
                   float(series.get("value", 0.0)))


def samples_from_snapshot(snapshot: dict) -> dict[SampleKey, float]:
    """Every sample the exposition carries, keyed by (name, labels).

    This is the agreement oracle: ``parse_prometheus(render_prometheus(
    snapshot))["samples"] == samples_from_snapshot(snapshot)`` must hold
    for any snapshot — asserted by the unit suite and the CI smoke
    against a live daemon.
    """
    samples: dict[SampleKey, float] = {}
    for name, entry in sorted(snapshot.items()):
        for sample_name, labels, value in _metric_samples(name, entry):
            samples[(sample_name, labels)] = value
    return samples


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    for name, entry in sorted(snapshot.items()):
        metric = sanitize_name(name)
        help_text = entry.get("help")
        if help_text:
            lines.append(f"# HELP {metric} {_escape_help(help_text)}")
        lines.append(f"# TYPE {metric} "
                     f"{_TYPE_BY_KIND.get(entry.get('kind'), 'untyped')}")
        for sample_name, labels, value in _metric_samples(name, entry):
            if labels:
                inner = ",".join(
                    f'{key}="{escape_label_value(val)}"'
                    for key, val in labels)
                lines.append(f"{sample_name}{{{inner}}} "
                             f"{format_value(value)}")
            else:
                lines.append(f"{sample_name} {format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# minimal parser (tests + CI smoke)
# ---------------------------------------------------------------------------


class PromParseError(ValueError):
    """The exposition text violated the subset this parser accepts."""


_UNESCAPE = {"n": "\n", '"': '"', "\\": "\\"}


def _parse_labels(line: str, start: int) -> tuple[
        tuple[tuple[str, str], ...], int]:
    """Parse ``{k="v",...}`` starting at ``line[start] == '{'``; returns
    the sorted label items and the index one past the closing brace."""
    labels: list[tuple[str, str]] = []
    i = start + 1
    while True:
        while i < len(line) and line[i] in ", \t":
            i += 1
        if i >= len(line):
            raise PromParseError(f"unterminated label set: {line!r}")
        if line[i] == "}":
            return tuple(sorted(labels)), i + 1
        eq = line.find("=", i)
        if eq == -1 or eq + 1 >= len(line) or line[eq + 1] != '"':
            raise PromParseError(f"malformed label in: {line!r}")
        key = line[i:eq].strip()
        i = eq + 2
        buffer: list[str] = []
        while True:
            if i >= len(line):
                raise PromParseError(f"unterminated label value: {line!r}")
            char = line[i]
            if char == "\\":
                if i + 1 >= len(line):
                    raise PromParseError(f"dangling escape in: {line!r}")
                buffer.append(_UNESCAPE.get(line[i + 1],
                                            "\\" + line[i + 1]))
                i += 2
            elif char == '"':
                i += 1
                break
            else:
                buffer.append(char)
                i += 1
        labels.append((key, "".join(buffer)))


def _parse_sample(line: str) -> tuple[str, tuple[tuple[str, str], ...],
                                      float]:
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        name = line[:brace]
        labels, end = _parse_labels(line, brace)
        rest = line[end:].strip()
    else:
        name, _, rest = line.partition(" ")
        labels = ()
        rest = rest.strip()
    if not name or not rest:
        raise PromParseError(f"malformed sample line: {line!r}")
    try:
        value = float(rest.split()[0])
    except ValueError:
        raise PromParseError(f"bad sample value in: {line!r}")
    return name, labels, value


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{"types": ..., "help": ...,
    "samples": ...}``.

    ``samples`` maps ``(name, sorted_label_items)`` to the float value;
    ``types`` maps base metric names to their declared type.  Raises
    :class:`PromParseError` on anything malformed — the CI smoke treats
    a parse failure as a broken ``/metrics`` endpoint.
    """
    types: dict[str, str] = {}
    help_texts: dict[str, str] = {}
    samples: dict[SampleKey, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(None, 1)
            if len(parts) != 2:
                raise PromParseError(f"malformed TYPE line: {raw!r}")
            types[parts[0]] = parts[1].strip()
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            if parts:
                help_texts[parts[0]] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line)
        samples[(name, labels)] = value
    return {"types": types, "help": help_texts, "samples": samples}


def assert_snapshot_agreement(snapshot: dict, text: str,
                              ignore: Optional[set] = None) -> None:
    """Raise ``AssertionError`` unless ``text`` carries exactly the
    samples of ``snapshot`` (modulo ``ignore``d metric names).  Shared by
    the unit tests and ``tools/service_smoke.py``."""
    expected = samples_from_snapshot(snapshot)
    parsed = parse_prometheus(text)["samples"]
    if ignore:
        def keep(key: SampleKey) -> bool:
            return not any(key[0] == name or key[0].startswith(name + "_")
                           for name in ignore)

        expected = {k: v for k, v in expected.items() if keep(k)}
        parsed = {k: v for k, v in parsed.items() if keep(k)}
    missing = sorted(set(expected) - set(parsed))
    extra = sorted(set(parsed) - set(expected))
    if missing or extra:
        raise AssertionError(
            f"prometheus exposition disagrees with the JSON snapshot: "
            f"missing={missing[:5]} extra={extra[:5]}")
    for key, value in expected.items():
        got = parsed[key]
        if not (value == got or (math.isnan(value) and math.isnan(got))):
            raise AssertionError(
                f"sample {key} differs: snapshot={value!r} text={got!r}")
