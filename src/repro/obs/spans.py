"""Span tracing: nested wall/CPU-timed regions of a run.

A span is a named region with attributes, wall time, and CPU time;
spans nest, and a finished trace is a tree such as::

    experiment(tab1)
    └─ job(selective)
       ├─ compile
       └─ execute

The :class:`Tracer` records spans into whatever context is current (see
:mod:`repro.obs`); a worker process serializes its finished tree through
:func:`Tracer.tree` (plain dicts) and the parent grafts it back with
:func:`Tracer.attach`, so ``jobs=N`` runs produce the same tree shape as
serial runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional


class SpanRecord:
    """One finished (or in-flight) span."""

    __slots__ = ("name", "attributes", "wall_s", "cpu_s", "children",
                 "_wall_start", "_cpu_start")

    def __init__(self, name: str, attributes: dict[str, object]):
        self.name = name
        self.attributes = attributes
        self.wall_s: float = 0.0
        self.cpu_s: float = 0.0
        self.children: list["SpanRecord"] = []
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()

    def finish(self) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "wall_s": self.wall_s,
                     "cpu_s": self.cpu_s}
        if self.attributes:
            out["attributes"] = {key: _jsonable_value(value) for key, value
                                 in self.attributes.items()}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


def _jsonable_value(value: object) -> object:
    """Span attributes end up in JSON manifests, but callers may attach
    anything (an EnergyParams, a Path, an enum).  Scalars pass through;
    everything else is pinned to ``repr`` so a single exotic attribute
    can no longer crash the manifest write."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class Tracer:
    """Records a forest of spans for one observability scope."""

    def __init__(self):
        self.roots: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[SpanRecord]:
        record = SpanRecord(name, attributes)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            record.finish()
            self._stack.pop()

    @property
    def current(self) -> Optional[SpanRecord]:
        return self._stack[-1] if self._stack else None

    def attach(self, subtree: list[dict]) -> None:
        """Graft serialized span trees (from a worker) under the current
        span, or as new roots if no span is open."""
        records = [_from_dict(node) for node in subtree]
        target = self._stack[-1].children if self._stack else self.roots
        target.extend(records)

    def tree(self) -> list[dict]:
        """The finished forest as JSON-serializable dicts."""
        return [root.to_dict() for root in self.roots]

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()


def _from_dict(node: dict) -> SpanRecord:
    record = SpanRecord(node["name"], dict(node.get("attributes", {})))
    record.wall_s = node.get("wall_s", 0.0)
    record.cpu_s = node.get("cpu_s", 0.0)
    record.children = [_from_dict(child)
                       for child in node.get("children", [])]
    return record


def phase_totals(tree: list[dict],
                 fold_indexed: bool = True) -> dict[str, dict]:
    """Per-phase wall/CPU totals of a span forest.

    Walks every node and sums same-name spans into
    ``{name: {"wall_s", "cpu_s", "count"}}`` — the per-phase latency
    breakdown the request report renders.  ``fold_indexed`` folds
    enumerated siblings (``chunk[3]``, ``trace[17]``) into their base
    name so a 4096-trace request reports one ``chunk`` row, not 256.
    """
    import re

    totals: dict[str, dict] = {}

    def visit(node: dict) -> None:
        name = str(node.get("name", "?"))
        if fold_indexed:
            name = re.sub(r"\[\d+\]$", "", name)
        slot = totals.setdefault(name, {"wall_s": 0.0, "cpu_s": 0.0,
                                        "count": 0})
        slot["wall_s"] += float(node.get("wall_s", 0.0))
        slot["cpu_s"] += float(node.get("cpu_s", 0.0))
        slot["count"] += 1
        for child in node.get("children", []):
            visit(child)

    for root in tree:
        visit(root)
    return totals


def count_spans(tree: list[dict]) -> int:
    """Total node count of a span forest (history-size bookkeeping)."""
    return sum(1 + count_spans(node.get("children", []))
               for node in tree)


def render_tree(tree: list[dict], indent: str = "") -> list[str]:
    """ASCII rendering of a span forest, one line per span."""
    lines: list[str] = []
    for position, node in enumerate(tree):
        last = position == len(tree) - 1
        connector = "└─ " if last else "├─ "
        attributes = node.get("attributes", {})
        suffix = ""
        if attributes:
            inner = ", ".join(f"{key}={value}"
                              for key, value in sorted(attributes.items()))
            suffix = f" [{inner}]"
        lines.append(f"{indent}{connector}{node['name']}{suffix}  "
                     f"wall={node['wall_s']:.3f}s cpu={node['cpu_s']:.3f}s")
        child_indent = indent + ("   " if last else "│  ")
        lines.extend(render_tree(node.get("children", []), child_indent))
    return lines
