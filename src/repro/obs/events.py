"""Structured JSONL event log for service request lifecycles.

One line per lifecycle transition (received, admitted, started, chunk,
deadline_check, terminal, …), flushed and fsync'd before the write
returns — like the service journal, a crash loses at most the line being
written.  Unlike the journal (which exists to *recover* state), the
event log exists to *explain* it: every line carries the request and
trace IDs, so an operator can reconstruct any request's timeline after
the daemon is gone, long after the in-memory history has been evicted.

The log rotates by size: when appending a line would push the active
file past ``max_bytes``, the file is renamed to ``<path>.1`` (replacing
any previous rotation) and a fresh file is started — a bounded two-file
window, not an unbounded archive.  :func:`replay_events` reads the
rotated file first so replay order matches write order, and tolerates a
truncated final line (the torn write a crash can leave behind).
:func:`timeline_from_events` rebuilds one request's timeline in the same
shape the live ``/v1/requests/<id>/trace`` endpoint serves.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from pathlib import Path
from typing import Iterator, Optional, Union

SCHEMA = "repro.obs.events/v1"

#: Default rotation threshold (bytes) for ``--event-log``.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class EventLog:
    """Append-only, fsync'd, size-rotated JSONL event sink.

    Thread-safe: the daemon's admission path and every executor thread
    write through one shared instance.  Write failures degrade to a
    warning and disable the sink rather than poisoning request handling
    — losing telemetry must never lose a request.
    """

    def __init__(self, path: Union[str, Path],
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.path = Path(path)
        self.max_bytes = max(int(max_bytes), 4096)
        self.events_written = 0
        self.rotations = 0
        self._lock = threading.Lock()
        self._stream: Optional[object] = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "ab")
            self._size = self._stream.tell()
        except OSError as exc:
            warnings.warn(f"event log disabled: cannot open "
                          f"{self.path}: {exc}", RuntimeWarning,
                          stacklevel=2)
            self._stream = None
            self._size = 0

    @property
    def rotated_path(self) -> Path:
        return self.path.with_name(self.path.name + ".1")

    def emit(self, event: str, **fields) -> None:
        """Append one event line (schema + wall timestamp + fields)."""
        record = {"schema": SCHEMA, "ts": round(time.time(), 6),
                  "event": str(event)}
        record.update(fields)
        data = (json.dumps(record, sort_keys=True, default=repr)
                + "\n").encode("utf-8")
        with self._lock:
            if self._stream is None:
                return
            try:
                if self._size and self._size + len(data) > self.max_bytes:
                    self._rotate_locked()
                self._stream.write(data)
                self._stream.flush()
                os.fsync(self._stream.fileno())
                self._size += len(data)
                self.events_written += 1
            except OSError as exc:
                warnings.warn(f"event log disabled after write failure: "
                              f"{exc}", RuntimeWarning, stacklevel=2)
                self._close_locked()

    def _rotate_locked(self) -> None:
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._stream.close()
        os.replace(self.path, self.rotated_path)
        self._stream = open(self.path, "ab")
        self._size = 0
        self.rotations += 1

    def _close_locked(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                try:
                    self._stream.flush()
                    os.fsync(self._stream.fileno())
                except OSError:
                    pass
            self._close_locked()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _iter_lines(path: Path) -> Iterator[dict]:
    try:
        raw = path.read_bytes()
    except OSError:
        return
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue  # torn tail from a crash mid-write
        if isinstance(record, dict) and record.get("schema") == SCHEMA:
            yield record


def replay_events(path: Union[str, Path],
                  include_rotated: bool = True) -> list[dict]:
    """All surviving events in write order (rotated file first)."""
    path = Path(path)
    events: list[dict] = []
    if include_rotated:
        rotated = path.with_name(path.name + ".1")
        if rotated.exists():
            events.extend(_iter_lines(rotated))
    if path.exists():
        events.extend(_iter_lines(path))
    return events


def timeline_from_events(events: list[dict],
                         request_id: str) -> list[dict]:
    """Rebuild one request's lifecycle timeline from replayed events.

    Same shape as the live record's timeline: ``{"event", "t_s", ...}``
    with ``t_s`` relative to the request's first event (wall-clock here,
    monotonic in the live record — ordering and event names match
    exactly; sub-millisecond offsets may differ).
    """
    timeline: list[dict] = []
    origin: Optional[float] = None
    for record in events:
        if record.get("id") != request_id:
            continue
        ts = float(record.get("ts", 0.0))
        if origin is None:
            origin = ts
        entry = {"event": record.get("event", "?"),
                 "t_s": round(max(0.0, ts - origin), 6)}
        for key, value in record.items():
            if key not in ("schema", "ts", "event", "id", "trace_id"):
                entry[key] = value
        timeline.append(entry)
    return timeline
