"""repro.obs — structured observability for the simulator stack.

Three pieces, all zero-dependency:

* a **metrics registry** (:mod:`repro.obs.registry`): labeled counters,
  gauges, and histograms — ``instructions_executed{opcode=xor,
  secure=true}``, ``energy_component_pj{component=dbus}``,
  ``compile_cache_lookups{result=hit}``;
* **span tracing** (:mod:`repro.obs.spans`): nested context-manager
  spans with wall and CPU time — ``experiment > job > compile >
  execute``;
* **run manifests** (:mod:`repro.obs.manifest`): one JSON document per
  run capturing package version, toolchain fingerprint, configuration,
  metric snapshot, and span tree, written atomically next to results.

The sink is **off by default**: every instrumentation site in the hot
layers is gated on :func:`enabled`, so an un-observed run executes the
exact seed code path (energy output bit-identical, overhead limited to
one predicate per run — never per cycle).  Enable it programmatically
(:func:`enable`), per scope (:func:`scope`), or from the environment
(``REPRO_OBS=1``).  :func:`enable` also exports ``REPRO_OBS=1`` so pool
workers observe themselves under either fork or spawn start methods; a
worker's registry snapshot and span tree ride home on its
:class:`~repro.harness.engine.JobResult` and merge deterministically in
submission order.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("experiment", id="tab1"):
        result = run_experiment("tab1")
    manifest = obs.build_manifest(experiment_id="tab1", config={...})
    obs.write_manifest(manifest, "tab1.manifest.json")
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from .attribution import AttributionSink
from .flamegraph import aggregate_spans, flamegraph_html, svg_flamegraph
from .manifest import (aggregate_manifests, build_manifest, diff_totals,
                       load_manifest, summarize_manifest, write_manifest)
from .progress import (ProgressReporter, ProgressSink, reporter_from_env,
                       sink_from_env)
from .registry import (CardinalityError, Counter, Gauge, Histogram,
                       MetricsRegistry, bucket_quantile, snapshot_totals)
from .spans import SpanRecord, Tracer, render_tree
from .streaming import (CorrelationAccumulator, DisclosureCurve,
                        MeanAccumulator, WelchTAccumulator,
                        WelfordAccumulator, merged)

__all__ = [
    "AttributionSink", "CardinalityError", "CorrelationAccumulator",
    "Counter", "DisclosureCurve", "Gauge", "Histogram", "MeanAccumulator",
    "MetricsRegistry", "ObsContext", "ProgressReporter", "ProgressSink",
    "SpanRecord", "Tracer", "WelchTAccumulator", "WelfordAccumulator",
    "aggregate_manifests", "aggregate_spans", "attribution",
    "attribution_enabled", "bucket_quantile", "build_manifest",
    "diff_totals", "disable", "disable_attribution", "enable",
    "enable_attribution", "enabled", "flamegraph_html", "load_manifest",
    "merged", "registry", "render_tree", "reporter_from_env", "scope",
    "sink_from_env", "snapshot_totals", "span", "summarize_manifest",
    "svg_flamegraph", "tracer", "write_manifest",
]


class ObsContext:
    """One observability scope: a registry, a tracer, and an attribution
    accumulator.

    The engine pushes a fresh context around each job so per-job metrics,
    spans, and attribution cells serialize independently of whatever else
    the process has recorded.  The attribution accumulator is a plain
    :class:`~repro.obs.attribution.AttributionSink`; per-run sinks merge
    into it (sums are associative, so any merge order that respects
    submission order is deterministic).
    """

    def __init__(self):
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.attribution = AttributionSink()


#: The process-wide root context: what every thread reads when it has no
#: scope of its own open.  Scopes themselves are **thread-local** (see
#: :class:`_ThreadState`), so concurrent scopes — the service daemon's
#: executor threads each tracing their own request — never interleave.
_root_context = ObsContext()


class _ThreadState(threading.local):
    """Per-thread observability state: the scope stack plus forced-enable
    counters.  ``threading.local`` runs ``__init__`` once per thread, so
    every thread starts with an empty stack over the shared root."""

    def __init__(self):
        self.stack: list[ObsContext] = []
        self.forced = 0
        self.forced_attribution = 0


_thread_state = _ThreadState()

_ENV_FLAG = "REPRO_OBS"


def _env_enabled() -> bool:
    return os.environ.get(_ENV_FLAG, "").strip().lower() \
        not in ("", "0", "false", "off")


_enabled = _env_enabled()


def enabled() -> bool:
    """Is the observability sink collecting?  (Default: off.)

    True when the sink is enabled process-wide (:func:`enable`,
    ``REPRO_OBS=1``) **or** the current thread is inside a forced scope
    (``scope(force=True)``) — the request-scoped tracing the service
    uses without toggling the global sink for unrelated threads.
    """
    return _enabled or _thread_state.forced > 0


def enable() -> None:
    """Turn the sink on, for this process and any future workers."""
    global _enabled
    _enabled = True
    os.environ[_ENV_FLAG] = "1"


def disable() -> None:
    """Turn the sink off (the default no-op state)."""
    global _enabled
    _enabled = False
    os.environ[_ENV_FLAG] = "0"


_ATTR_ENV_FLAG = "REPRO_ATTRIBUTION"


def _attr_env_enabled() -> bool:
    return os.environ.get(_ATTR_ENV_FLAG, "").strip().lower() \
        not in ("", "0", "false", "off")


_attribution_enabled = _attr_env_enabled()


def attribution_enabled() -> bool:
    """Is per-PC energy attribution collecting?  (Default: off.)

    Like :func:`enabled`, honors both the process-wide flag and the
    current thread's forced scopes (``scope(attribution=True)``).
    """
    return _attribution_enabled or _thread_state.forced_attribution > 0


def enable_attribution() -> None:
    """Turn attribution on, for this process and any future workers.

    Attribution rides on the observability sink (per-run sinks merge into
    the current context and ship home on ``JobResult``), so enabling it
    also enables the sink.
    """
    global _attribution_enabled
    _attribution_enabled = True
    os.environ[_ATTR_ENV_FLAG] = "1"
    enable()


def disable_attribution() -> None:
    """Turn attribution off (the default state)."""
    global _attribution_enabled
    _attribution_enabled = False
    os.environ[_ATTR_ENV_FLAG] = "0"


def attribution() -> AttributionSink:
    """The current context's attribution accumulator."""
    return context().attribution


def context() -> ObsContext:
    """The current observability context (this thread's innermost scope,
    else the shared process-wide root)."""
    stack = _thread_state.stack
    return stack[-1] if stack else _root_context


def registry() -> MetricsRegistry:
    """The current metrics registry."""
    return context().registry


def tracer() -> Tracer:
    """The current span tracer."""
    return context().tracer


@contextmanager
def scope(force: bool = False,
          attribution: bool = False) -> Iterator[ObsContext]:
    """Push a fresh registry+tracer; metrics recorded inside stay local.

    Used by the engine to isolate per-job observability (serial and
    worker paths alike) and by tests to keep the module-level context
    clean.  Scopes are per-thread: a scope opened on one thread is
    invisible to every other thread, so concurrent scoped work (the
    service daemon's executor threads) cannot interleave span trees.

    ``force=True`` additionally makes :func:`enabled` answer True *for
    this thread* while the scope is open — request-scoped tracing
    without flipping the process-wide sink (no ``REPRO_OBS`` export, so
    sibling threads and their pool dispatch decisions are untouched).
    ``attribution=True`` does the same for :func:`attribution_enabled`
    (and implies ``force``).
    """
    fresh = ObsContext()
    state = _thread_state
    state.stack.append(fresh)
    forced = force or attribution
    if forced:
        state.forced += 1
    if attribution:
        state.forced_attribution += 1
    try:
        yield fresh
    finally:
        state.stack.pop()
        if forced:
            state.forced -= 1
        if attribution:
            state.forced_attribution -= 1


class _NullSpan:
    """Reusable no-op context manager for disabled-sink span sites."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attributes):
    """Open a span in the current tracer; a shared no-op when disabled."""
    if not _enabled and not _thread_state.forced:
        return _NULL_SPAN
    return context().tracer.span(name, **attributes)


def counter(name: str, help: str = "") -> Counter:
    """Shorthand for ``registry().counter(...)``."""
    return context().registry.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Shorthand for ``registry().gauge(...)``."""
    return context().registry.gauge(name, help)


def histogram(name: str, help: str = "", **kwargs) -> Histogram:
    """Shorthand for ``registry().histogram(...)``."""
    return context().registry.histogram(name, help, **kwargs)


def reset() -> None:
    """Clear the current context's metrics and spans (tests, REPL)."""
    current = context()
    current.registry.reset()
    current.tracer.reset()
    current.attribution.reset()
