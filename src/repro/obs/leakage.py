"""Leakage telemetry: per-region differential energy as a budget check.

The paper's security argument is a *flat differential trace*: two runs
with different keys (Figs. 7-9) or plaintexts (Figs. 10-11) consume
cycle-identical energy over the masked regions.  This module turns that
claim into first-class telemetry:

* phase markers (:mod:`repro.programs.markers`) delimit the named
  **regions** of a DES run — the initial permutation, the PC-1 key
  permutation, each round, the final permutation — and say which of them
  the masking pass claims to protect;
* :func:`assess_pair` scores a differential trace per region (max/mean
  absolute difference, number of leaking cycles) against a **leakage
  budget** in pJ: any *protected* region whose differential exceeds the
  budget is flagged as a violation;
* :func:`assess_population` runs the TVLA-style statistics of
  :mod:`repro.attacks.stats` (Welch t, SNR) over a trace matrix, region
  by region, against a t-budget.

A :class:`LeakageReport` serializes into the run manifest (schema v2
``leakage`` section), publishes gauges/counters to the metrics registry,
and renders as the verdict table of ``repro obs report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..programs.markers import (M_FP_END, M_FP_START, M_IP_END, M_IP_START,
                                M_KEYPERM_END, M_KEYPERM_START, M_ROUND_BASE)

#: Default leakage budget: the paper's masked differentials are exactly
#: flat, so anything above float-noise level in a protected region is a
#: genuine residual signal.
DEFAULT_BUDGET_PJ = 1e-6

#: Default Welch-t budget for population assessments (the classic TVLA
#: pass/fail threshold).
DEFAULT_BUDGET_T = 4.5


@dataclass(frozen=True)
class Region:
    """A named cycle window ``[start, end)`` with a protection claim."""

    name: str
    start: int
    end: int
    #: True if the masking policy claims this region's energy is
    #: data-independent (the key permutation and the cipher rounds).
    protected: bool


def regions_from_markers(markers: Sequence[tuple[int, int]],
                         n_cycles: int) -> list[Region]:
    """Build the DES region list from a run's (cycle, value) markers.

    Protected regions are *structurally* defined: the key permutation and
    every round are what the paper's selective masking secures, so an
    unmasked run is assessed against the same claims — that is exactly
    what makes its budget check fail.
    """
    cycles_of: dict[int, list[int]] = {}
    for cycle, value in markers:
        cycles_of.setdefault(value, []).append(cycle)

    def first(value: int) -> Optional[int]:
        cycles = cycles_of.get(value)
        return cycles[0] if cycles else None

    def first_after(value: int, start: int) -> Optional[int]:
        for cycle in cycles_of.get(value, ()):
            if cycle > start:
                return cycle
        return None

    regions: list[Region] = []

    def paired(name: str, start_value: int, end_value: int,
               protected: bool) -> None:
        start = first(start_value)
        if start is None:
            return
        end = first_after(end_value, start)
        regions.append(Region(name, start,
                              end if end is not None else n_cycles,
                              protected))

    paired("ip", M_IP_START, M_IP_END, protected=False)
    paired("keyperm", M_KEYPERM_START, M_KEYPERM_END, protected=True)

    round_starts = sorted((cycles[0], value - M_ROUND_BASE)
                          for value, cycles in cycles_of.items()
                          if M_ROUND_BASE <= value < M_ROUND_BASE + 16)
    fp_start = first(M_FP_START)
    for position, (start, round_index) in enumerate(round_starts):
        if position + 1 < len(round_starts):
            end = round_starts[position + 1][0]
        elif fp_start is not None and fp_start > start:
            end = fp_start
        else:
            end = n_cycles
        regions.append(Region(f"round{round_index:02d}", start, end,
                              protected=True))

    paired("fp", M_FP_START, M_FP_END, protected=False)
    regions.sort(key=lambda region: region.start)
    return regions


@dataclass
class RegionAssessment:
    """Leakage verdict for one region of a differential trace."""

    region: str
    start: int
    end: int
    protected: bool
    cycles: int
    max_abs_diff_pj: float
    mean_abs_diff_pj: float
    #: Cycles whose absolute differential exceeds the budget.
    leaking_cycles: int
    passed: bool
    #: Population statistics (None for two-trace assessments).
    welch_t_max: Optional[float] = None
    snr_max: Optional[float] = None

    def to_dict(self) -> dict:
        record = {
            "region": self.region, "start": self.start, "end": self.end,
            "protected": self.protected, "cycles": self.cycles,
            "max_abs_diff_pj": self.max_abs_diff_pj,
            "mean_abs_diff_pj": self.mean_abs_diff_pj,
            "leaking_cycles": self.leaking_cycles, "passed": self.passed,
        }
        if self.welch_t_max is not None:
            record["welch_t_max"] = self.welch_t_max
        if self.snr_max is not None:
            record["snr_max"] = self.snr_max
        return record


@dataclass
class LeakageReport:
    """Per-region leakage assessment of one differential (or population)."""

    budget_pj: float
    regions: list[RegionAssessment] = field(default_factory=list)
    #: Set for population assessments (Welch-t budget).
    budget_t: Optional[float] = None
    label: str = ""

    @property
    def passed(self) -> bool:
        """True iff every *protected* region stays inside the budget."""
        return all(assessment.passed for assessment in self.regions
                   if assessment.protected)

    @property
    def violations(self) -> list[RegionAssessment]:
        return [assessment for assessment in self.regions
                if assessment.protected and not assessment.passed]

    def to_dict(self) -> dict:
        record = {
            "budget_pj": self.budget_pj,
            "passed": self.passed,
            "violations": len(self.violations),
            "regions": [assessment.to_dict() for assessment in self.regions],
        }
        if self.budget_t is not None:
            record["budget_t"] = self.budget_t
        if self.label:
            record["label"] = self.label
        return record

    def publish_metrics(self, registry) -> None:
        """Gauges/counters for the metrics registry (manifest v2 fields)."""
        diff_gauge = registry.gauge(
            "leakage_region_max_abs_diff_pj",
            "peak absolute differential energy per region (pJ)")
        pass_gauge = registry.gauge(
            "leakage_region_passed",
            "1 if the region stayed within the leakage budget")
        for assessment in self.regions:
            diff_gauge.add(assessment.max_abs_diff_pj,
                           region=assessment.region)
            pass_gauge.add(1.0 if assessment.passed else 0.0,
                           region=assessment.region)
        registry.counter(
            "leakage_budget_violations",
            "protected regions whose differential exceeded the budget") \
            .inc(len(self.violations))

    def render(self) -> str:
        """ASCII verdict table."""
        lines = [f"leakage budget: {self.budget_pj:g} pJ"
                 + (f", |t| < {self.budget_t:g}"
                    if self.budget_t is not None else "")
                 + (f"  [{self.label}]" if self.label else "")]
        header = (f"  {'region':<10} {'cycles':>7} {'protected':>9} "
                  f"{'max|Δ| pJ':>12} {'leaking':>8}  verdict")
        lines.append(header)
        for a in self.regions:
            verdict = "PASS" if a.passed else "FAIL"
            if not a.protected:
                verdict = "-" if a.max_abs_diff_pj > self.budget_pj \
                    else "flat"
            extra = f"  t={a.welch_t_max:.1f}" \
                if a.welch_t_max is not None else ""
            lines.append(f"  {a.region:<10} {a.cycles:>7} "
                         f"{'yes' if a.protected else 'no':>9} "
                         f"{a.max_abs_diff_pj:>12.4g} "
                         f"{a.leaking_cycles:>8}  {verdict}{extra}")
        lines.append(f"  verdict: "
                     f"{'PASS' if self.passed else 'FAIL'} "
                     f"({len(self.violations)} violation(s) in "
                     f"{sum(1 for a in self.regions if a.protected)} "
                     f"protected region(s))")
        return "\n".join(lines)


def _assess_window(diff: np.ndarray, region: Region,
                   budget_pj: float) -> RegionAssessment:
    window = diff[region.start:region.end]
    absolute = np.abs(window)
    max_abs = float(absolute.max()) if absolute.size else 0.0
    mean_abs = float(absolute.mean()) if absolute.size else 0.0
    leaking = int((absolute > budget_pj).sum())
    passed = (not region.protected) or max_abs <= budget_pj
    return RegionAssessment(region=region.name, start=region.start,
                            end=region.end, protected=region.protected,
                            cycles=int(window.shape[0]),
                            max_abs_diff_pj=max_abs,
                            mean_abs_diff_pj=mean_abs,
                            leaking_cycles=leaking, passed=passed)


def assess_pair(trace_a, trace_b, budget_pj: float = DEFAULT_BUDGET_PJ,
                regions: Optional[list[Region]] = None,
                label: str = "") -> LeakageReport:
    """Assess the differential of two cycle-aligned traces region by region.

    ``trace_a``/``trace_b`` are :class:`~repro.energy.trace.EnergyTrace`
    instances (the regions default to ``trace_a``'s markers).  This is the
    two-run form of the paper's figures: same program, two keys or two
    plaintexts.
    """
    diff = np.asarray(trace_a.diff(trace_b), dtype=np.float64)
    if regions is None:
        regions = regions_from_markers(trace_a.markers, diff.shape[0])
    report = LeakageReport(budget_pj=budget_pj, label=label)
    for region in regions:
        report.regions.append(_assess_window(diff, region, budget_pj))
    return report


def assess_population(traces, partition,
                      markers: Sequence[tuple[int, int]],
                      budget_t: float = DEFAULT_BUDGET_T,
                      budget_pj: float = DEFAULT_BUDGET_PJ,
                      regions: Optional[list[Region]] = None,
                      label: str = "") -> LeakageReport:
    """TVLA-style population assessment over a trace matrix.

    ``traces`` is ``(n_traces, n_cycles)``, ``partition`` a 0/1 vector
    (e.g. a selection-function prediction); per region the report carries
    the peak Welch-t and SNR alongside the difference-of-means, and a
    protected region passes only while ``max |t| < budget_t``.
    """
    from ..attacks.stats import (difference_of_means, signal_to_noise,
                                 welch_t_statistic)

    traces = np.asarray(traces, dtype=np.float64)
    diff = difference_of_means(traces, partition)
    t = welch_t_statistic(traces, partition)
    snr = signal_to_noise(traces, np.asarray(partition))
    if regions is None:
        regions = regions_from_markers(markers, traces.shape[1])
    report = LeakageReport(budget_pj=budget_pj, budget_t=budget_t,
                           label=label)
    for region in regions:
        assessment = _assess_window(diff, region, budget_pj)
        window_t = np.abs(t[region.start:region.end])
        window_snr = snr[region.start:region.end]
        assessment.welch_t_max = float(window_t.max()) \
            if window_t.size else 0.0
        assessment.snr_max = float(window_snr.max()) \
            if window_snr.size else 0.0
        assessment.passed = (not region.protected) \
            or assessment.welch_t_max < budget_t
        report.regions.append(assessment)
    return report
