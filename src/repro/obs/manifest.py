"""Run manifests: the machine-readable record of one measurement.

A manifest answers, a month later, "what exactly produced these numbers?"
It captures the package version, a fingerprint of the toolchain sources,
the platform, the run configuration (masking policy, energy parameters,
seeds, effective worker count), the final metrics snapshot, and the span
tree — one JSON document written **atomically** next to the results it
describes, so a crash mid-write never leaves a half manifest.

``repro obs summarize`` renders one manifest or aggregates/diffs several;
:func:`aggregate_manifests` is the library entry point behind it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Union

from .registry import MetricsRegistry, snapshot_totals
from .spans import render_tree

PathLike = Union[str, Path]

SCHEMA = "repro.obs.manifest/v2"

#: Schemas :func:`load_manifest` accepts.  v2 adds the optional
#: ``attribution`` (energy-provenance rollup) and ``leakage``
#: (per-region budget verdicts) sections; every v1 field is unchanged,
#: so v1 manifests load, aggregate, and diff exactly as before.
COMPATIBLE_SCHEMAS = ("repro.obs.manifest/v1", SCHEMA)


def build_manifest(experiment_id: Optional[str] = None,
                   config: Optional[dict] = None,
                   summary: Optional[dict] = None,
                   metrics: Optional[dict] = None,
                   spans: Optional[list] = None,
                   attribution: Optional[dict] = None,
                   leakage: Optional[dict] = None) -> dict:
    """Assemble a manifest document from the current observability state.

    ``metrics``/``spans`` default to the *current* context's snapshot and
    span tree; pass them explicitly to build a manifest for a scoped run.
    ``config`` is the caller's configuration record (masking policy,
    energy parameters, seeds, jobs); ``summary`` carries experiment
    headline scalars.

    Schema v2 sections, both optional (omitted when empty, so runs that
    collect neither produce documents with the exact v1 field set):

    * ``attribution`` — the energy-provenance rollup; defaults to a
      summary of the current context's attribution accumulator when it
      holds cells, or pass a full/summarized snapshot explicitly;
    * ``leakage`` — a :class:`~repro.obs.leakage.LeakageReport` dict (or
      a mapping of several).
    """
    from . import context
    from .attribution import SCHEMA as ATTRIBUTION_SCHEMA
    from .attribution import summarize_attribution
    from ..harness.engine import _toolchain_fingerprint

    current = context()
    if metrics is None:
        metrics = current.registry.snapshot()
    if spans is None:
        spans = current.tracer.tree()
    if attribution is None and current.attribution:
        attribution = summarize_attribution(current.attribution.snapshot())
    elif attribution is not None and "cells" in attribution \
            and isinstance(attribution.get("cells"), list) \
            and attribution.get("schema") == ATTRIBUTION_SCHEMA:
        attribution = summarize_attribution(attribution)
    manifest: dict = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "package": {"name": "repro", "version": _package_version()},
        "toolchain_fingerprint": _toolchain_fingerprint(),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "argv": list(sys.argv),
        "config": dict(config or {}),
        "metrics": metrics,
        "spans": spans,
    }
    fault_plan = os.environ.get("REPRO_FAULT_PLAN")
    if fault_plan:
        # Injected faults invalidate timing comparisons; a manifest from
        # such a run must say so.
        manifest["fault_plan"] = fault_plan
    if experiment_id is not None:
        manifest["experiment_id"] = experiment_id
    if summary is not None:
        manifest["summary"] = {key: _jsonable(value)
                               for key, value in summary.items()}
    if attribution:
        manifest["attribution"] = attribution
    if leakage:
        manifest["leakage"] = leakage
    return manifest


def _package_version() -> str:
    from .. import __version__

    return __version__


def _jsonable(value):
    """Coerce numpy scalars / exotic types to JSON-safe primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def write_manifest(manifest: dict, path: PathLike) -> Path:
    """Atomically write a manifest next to its results; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(manifest, indent=2, sort_keys=True,
                         default=_jsonable)
    handle, temp_name = tempfile.mkstemp(dir=target.parent,
                                         suffix=".manifest.tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(payload)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return target


def load_manifest(path: PathLike) -> dict:
    """Load a manifest written by :func:`write_manifest`."""
    manifest = json.loads(Path(path).read_text())
    schema = manifest.get("schema")
    if schema not in COMPATIBLE_SCHEMAS:
        raise ValueError(f"{path}: not a repro run manifest "
                         f"(schema={schema!r})")
    return manifest


def aggregate_manifests(manifests: list[dict]) -> dict:
    """Merge the metric snapshots of several manifests into one.

    Counters and histograms add; gauges add as per-run totals (see
    :meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`).  Returns
    an aggregate record with the merged snapshot plus provenance counts.
    """
    registry = MetricsRegistry()
    experiment_ids = []
    for manifest in manifests:
        registry.merge_snapshot(manifest.get("metrics", {}))
        experiment_ids.append(manifest.get("experiment_id", "-"))
    return {
        "manifests": len(manifests),
        "experiment_ids": experiment_ids,
        "metrics": registry.snapshot(),
    }


def diff_totals(before: dict, after: dict) -> list[tuple[str, float, float]]:
    """Per-series (name, before, after) rows across two manifests.

    Includes every series present in either manifest; absent series read
    as zero, so new or vanished metrics are visible in the diff.
    """
    totals_before = snapshot_totals(before.get("metrics", {}))
    totals_after = snapshot_totals(after.get("metrics", {}))
    names = sorted(set(totals_before) | set(totals_after))
    return [(name, totals_before.get(name, 0.0), totals_after.get(name, 0.0))
            for name in names]


def summarize_manifest(manifest: dict) -> str:
    """Human-readable rendering of one manifest."""
    lines: list[str] = []
    package = manifest.get("package", {})
    lines.append(f"manifest: {manifest.get('experiment_id', '-')}  "
                 f"({package.get('name', '?')} "
                 f"{package.get('version', '?')}, "
                 f"toolchain {manifest.get('toolchain_fingerprint', '?')})")
    platform_info = manifest.get("platform", {})
    if platform_info:
        lines.append("  platform: "
                     + " ".join(f"{key}={value}" for key, value
                                in sorted(platform_info.items())))
    created = manifest.get("created_iso")
    if created:
        lines.append(f"  created:  {created}")
    config = manifest.get("config", {})
    if config:
        lines.append("  config:")
        for key, value in sorted(config.items()):
            lines.append(f"    {key:<28} {value}")
    summary = manifest.get("summary", {})
    if summary:
        lines.append("  summary:")
        for key, value in sorted(summary.items()):
            formatted = f"{value:,.3f}" if isinstance(value, float) \
                else value
            lines.append(f"    {key:<40} {formatted}")
    totals = snapshot_totals(manifest.get("metrics", {}))
    if totals:
        lines.append("  metrics:")
        for name, value in totals.items():
            formatted = f"{value:,.3f}" if isinstance(value, float) \
                and not float(value).is_integer() else f"{int(value):,}"
            lines.append(f"    {name:<56} {formatted}")
    attribution = manifest.get("attribution", {})
    if attribution:
        lines.append(f"  attribution: {attribution.get('total_pj', 0.0):,.3f}"
                     f" pJ over {attribution.get('cells', 0)} cells")
        for section in ("by_unit", "by_region"):
            rollup = attribution.get(section, {})
            if rollup:
                lines.append(f"    {section}:")
                for key, slot in sorted(rollup.items(),
                                        key=lambda kv: -kv[1]["pj"]):
                    lines.append(f"      {key:<24} {slot['pj']:,.3f} pJ"
                                 f"  ({slot['events']:,} events)")
        hotspots = attribution.get("top_hotspots", [])
        if hotspots:
            lines.append("    top hotspots:")
            for spot in hotspots[:5]:
                where = f"pc=0x{spot['pc']:04x}" if spot.get("pc", -1) >= 0 \
                    else "overhead"
                line_no = spot.get("line")
                if line_no:
                    where += f" line {line_no}"
                lines.append(f"      {where:<28} {spot['pj']:,.3f} pJ")
    leakage = manifest.get("leakage", {})
    if leakage:
        # Either one report dict or a mapping of labelled reports.
        reports = leakage.values() if "regions" not in leakage \
            else [leakage]
        lines.append("  leakage:")
        for report in reports:
            label = report.get("label", "-")
            verdict = "PASS" if report.get("passed") else "FAIL"
            lines.append(f"    {label:<32} {verdict} "
                         f"({report.get('violations', 0)} violation(s), "
                         f"budget {report.get('budget_pj', 0.0):g} pJ)")
    spans = manifest.get("spans", [])
    if spans:
        lines.append("  spans:")
        lines.extend("    " + line for line in render_tree(spans))
    return "\n".join(lines)
