"""Energy provenance: book every picojoule to where it came from.

The :class:`AttributionSink` is an opt-in companion to
:class:`~repro.energy.tracker.EnergyTracker`.  When attached, every energy
increment the tracker records is *also* booked under a four-part key::

    (pc, pipeline unit, instruction class, secure-mode)

``pc`` is the byte address of the instruction the energy belongs to
(:data:`OVERHEAD_PC` for program-independent costs such as the clock tree
and injected noise); the unit names follow the tracker's component
breakdown (``clock``, ``ibus``, ``regfile``, ``funits``, ``dbus``,
``memport``, ``latches``, ``secure``, ``noise``); the instruction class is
a coarse bucket (``xor``, ``shift``, ``alu``, ``load``, ``store``,
``branch``, ``jump``, ``nop``, ``halt``, ``overhead``) derived from the
opcode table.

Conservation invariant: the sink receives exactly the increments the
tracker adds to its running totals, so ``sum(cell.pj) ==
tracker.total_energy_pj`` up to float summation order (verified to 1e-9
relative by the test suite).  Because cells are plain sums, merging is
associative and commutative — per-worker snapshots combined in submission
order give bit-identical aggregates for any ``jobs=N``.

Rollups climb the provenance ladder: per-PC cells annotate themselves with
the instruction's disassembly, its *source line* (threaded from the
high-level compiler through ``.loc`` directives), and its *slice
membership* (whether the masking pass put it in the secured program
slice), so per-PC totals fold into per-source-line and per-secure-region
totals.
"""

from __future__ import annotations

from typing import Optional

from ..isa.instructions import AluOp, OPCODES

SCHEMA = "repro.obs.attribution/v1"

#: Pseudo-PC for program-independent energy (clock tree, injected noise).
OVERHEAD_PC = -1

_SHIFT_OPS = (AluOp.SLL, AluOp.SRL, AluOp.SRA)


def _classify(spec) -> str:
    if spec.halts:
        return "halt"
    if spec.is_load:
        return "load"
    if spec.is_store:
        return "store"
    if spec.is_branch:
        return "branch"
    if spec.is_jump:
        return "jump"
    if spec.alu is AluOp.XOR:
        return "xor"
    if spec.alu in _SHIFT_OPS:
        return "shift"
    if spec.alu is AluOp.NONE:
        return "nop"
    return "alu"


#: Opcode -> instruction class, precomputed so the per-increment path is a
#: single dict lookup.
CLASS_BY_OP: dict[str, str] = {name: _classify(spec)
                               for name, spec in OPCODES.items()}

#: All instruction classes, stable order for rendering.
CLASSES = ("xor", "shift", "alu", "load", "store", "branch", "jump",
           "nop", "halt", "overhead")


class AttributionSink:
    """Accumulates (pc, unit, class, secure) -> [pJ, event count] cells.

    The booking methods are called from the tracker's per-cycle hook path,
    so they do as little as possible: one tuple construction and one dict
    access per increment.  Everything else (annotation, rollups,
    rendering) happens after the run.
    """

    __slots__ = ("cells", "pc_info")

    def __init__(self):
        #: (pc, unit, iclass, secure) -> [pj, events]
        self.cells: dict[tuple[int, str, str, bool], list] = {}
        #: pc -> {"asm": str, "line": int|None, "sliced": bool} once
        #: :meth:`annotate` has seen a program covering the pc.
        self.pc_info: dict[int, dict] = {}

    # -- booking (hot path) -------------------------------------------

    def book(self, pc: int, unit: str, iclass: str, secure: bool,
             pj: float) -> None:
        key = (pc, unit, iclass, secure)
        cell = self.cells.get(key)
        if cell is None:
            self.cells[key] = [pj, 1]
        else:
            cell[0] += pj
            cell[1] += 1

    def book_ins(self, pc: int, unit: str, ins, pj: float) -> None:
        """Book an increment belonging to one instruction."""
        key = (pc, unit, CLASS_BY_OP[ins.op], ins.secure)
        cell = self.cells.get(key)
        if cell is None:
            self.cells[key] = [pj, 1]
        else:
            cell[0] += pj
            cell[1] += 1

    def book_overhead(self, unit: str, pj: float) -> None:
        """Book a program-independent increment (clock tree, noise)."""
        self.book(OVERHEAD_PC, unit, "overhead", False, pj)

    # -- post-run -----------------------------------------------------

    def annotate(self, program) -> None:
        """Attach disassembly + source-line debug info for booked PCs."""
        text = program.text
        base = program.text_base
        for pc in {key[0] for key in self.cells}:
            if pc < 0 or pc in self.pc_info:
                continue
            index = (pc - base) >> 2
            if 0 <= index < len(text):
                ins = text[index]
                self.pc_info[pc] = {
                    "asm": str(ins),
                    "line": ins.source_line,
                    "sliced": bool(ins.sliced),
                }

    def total_pj(self) -> float:
        return sum(cell[0] for cell in self.cells.values())

    def total_events(self) -> int:
        return sum(cell[1] for cell in self.cells.values())

    def __bool__(self) -> bool:
        return bool(self.cells)

    # -- snapshot / merge ---------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able, deterministic dump of the accumulated attribution."""
        cells = [[pc, unit, iclass, int(secure), cell[0], cell[1]]
                 for (pc, unit, iclass, secure), cell
                 in sorted(self.cells.items())]
        return {
            "schema": SCHEMA,
            "cells": cells,
            "pc_info": {str(pc): dict(info)
                        for pc, info in sorted(self.pc_info.items())},
            "total_pj": self.total_pj(),
        }

    def merge(self, other: "AttributionSink") -> None:
        """Fold another sink's cells into this one (associative sums)."""
        cells = self.cells
        for key, incoming in other.cells.items():
            cell = cells.get(key)
            if cell is None:
                cells[key] = list(incoming)
            else:
                cell[0] += incoming[0]
                cell[1] += incoming[1]
        for pc, info in other.pc_info.items():
            self.pc_info.setdefault(pc, dict(info))

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a serialized snapshot (e.g. from a pool worker) in."""
        if not snapshot:
            return
        schema = snapshot.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"not an attribution snapshot "
                             f"(schema={schema!r})")
        cells = self.cells
        for pc, unit, iclass, secure, pj, events in snapshot.get("cells",
                                                                 ()):
            key = (int(pc), unit, iclass, bool(secure))
            cell = cells.get(key)
            if cell is None:
                cells[key] = [pj, int(events)]
            else:
                cell[0] += pj
                cell[1] += int(events)
        for pc, info in snapshot.get("pc_info", {}).items():
            self.pc_info.setdefault(int(pc), dict(info))

    def reset(self) -> None:
        self.cells.clear()
        self.pc_info.clear()


# ---------------------------------------------------------------------
# Rollups over snapshots (work on live sinks via .snapshot() or on JSON
# loaded back from disk — the CLI path).
# ---------------------------------------------------------------------

def _iter_cells(snapshot: dict):
    for pc, unit, iclass, secure, pj, events in snapshot.get("cells", ()):
        yield int(pc), unit, iclass, bool(secure), float(pj), int(events)


def rollup_units(snapshot: dict) -> dict[str, dict]:
    """Per-pipeline-unit {pj, events}; matches tracker component totals."""
    out: dict[str, dict] = {}
    for _, unit, _, _, pj, events in _iter_cells(snapshot):
        slot = out.setdefault(unit, {"pj": 0.0, "events": 0})
        slot["pj"] += pj
        slot["events"] += events
    return out


def rollup_classes(snapshot: dict) -> dict[str, dict]:
    """Per-instruction-class {pj, events}."""
    out: dict[str, dict] = {}
    for _, _, iclass, _, pj, events in _iter_cells(snapshot):
        slot = out.setdefault(iclass, {"pj": 0.0, "events": 0})
        slot["pj"] += pj
        slot["events"] += events
    return out


def rollup_secure(snapshot: dict) -> dict[str, dict]:
    """Split by the secure bit of the owning instruction."""
    out: dict[str, dict] = {}
    for pc, _, _, secure, pj, events in _iter_cells(snapshot):
        name = "overhead" if pc < 0 else ("secure" if secure else "insecure")
        slot = out.setdefault(name, {"pj": 0.0, "events": 0})
        slot["pj"] += pj
        slot["events"] += events
    return out


def rollup_pcs(snapshot: dict) -> dict[int, dict]:
    """Per-PC {pj, events, asm, line, sliced}, annotated when known."""
    info = snapshot.get("pc_info", {})
    out: dict[int, dict] = {}
    for pc, _, _, _, pj, events in _iter_cells(snapshot):
        slot = out.get(pc)
        if slot is None:
            meta = info.get(str(pc), {})
            slot = out[pc] = {"pj": 0.0, "events": 0,
                              "asm": meta.get("asm"),
                              "line": meta.get("line"),
                              "sliced": bool(meta.get("sliced", False))}
        slot["pj"] += pj
        slot["events"] += events
    return out


def rollup_lines(snapshot: dict) -> dict[Optional[int], dict]:
    """Per-source-line {pj, events, sliced}; ``None`` collects unmapped PCs.

    The source line rides on the instruction via the codegen/assembler
    ``.loc`` chain; hand-written assembly without ``.loc`` directives (and
    the overhead pseudo-PC) lands in the ``None`` bucket.
    """
    out: dict[Optional[int], dict] = {}
    for pc, record in rollup_pcs(snapshot).items():
        line = record["line"] if pc >= 0 else None
        slot = out.setdefault(line, {"pj": 0.0, "events": 0,
                                     "sliced": False})
        slot["pj"] += record["pj"]
        slot["events"] += record["events"]
        slot["sliced"] = slot["sliced"] or record["sliced"]
    return out


def rollup_regions(snapshot: dict) -> dict[str, dict]:
    """Secured-slice vs rest vs overhead {pj, events}.

    "secured" means the instruction belongs to the program slice the
    masking pass protected (``.loc``'s slice flag), independent of whether
    the individual instruction carries the secure bit — exactly the
    source-region notion the paper's Figure 4 listing uses.
    """
    out: dict[str, dict] = {}
    for pc, record in rollup_pcs(snapshot).items():
        if pc < 0:
            name = "overhead"
        elif record["sliced"]:
            name = "secured"
        else:
            name = "unsecured"
        slot = out.setdefault(name, {"pj": 0.0, "events": 0})
        slot["pj"] += record["pj"]
        slot["events"] += record["events"]
    return out


def top_hotspots(snapshot: dict, n: int = 20) -> list[dict]:
    """Top-``n`` PCs by energy, with share of the run total."""
    total = snapshot.get("total_pj") or 0.0
    rows = []
    for pc, record in rollup_pcs(snapshot).items():
        if pc < 0:
            continue
        rows.append({"pc": pc, "pj": record["pj"],
                     "events": record["events"],
                     "share": record["pj"] / total if total else 0.0,
                     "asm": record["asm"], "line": record["line"],
                     "sliced": record["sliced"]})
    rows.sort(key=lambda row: (-row["pj"], row["pc"]))
    return rows[:n]


def summarize_attribution(snapshot: dict, top: int = 25) -> dict:
    """Compact rollup of a snapshot for embedding in a run manifest.

    Full per-PC cell dumps can reach hundreds of kilobytes; manifests get
    the rollups (per unit / class / region), the top hotspots, and the
    cell count, while the complete snapshot goes to its own JSON file
    (``--attribution PATH``).
    """
    return {
        "schema": snapshot.get("schema", SCHEMA),
        "total_pj": snapshot.get("total_pj", 0.0),
        "cells": len(snapshot.get("cells", [])),
        "by_unit": rollup_units(snapshot),
        "by_class": rollup_classes(snapshot),
        "by_region": rollup_regions(snapshot),
        "top_hotspots": top_hotspots(snapshot, n=top),
    }


def render_attribution(snapshot: dict, top: int = 20) -> str:
    """ASCII rendering of an attribution snapshot (``repro obs attribution``).

    Accepts either a full :meth:`AttributionSink.snapshot` or the compact
    :func:`summarize_attribution` rollup a manifest embeds (detected by
    ``cells`` being a count rather than a list); the summary form renders
    the same sections minus the per-source-line table.
    """
    if not isinstance(snapshot.get("cells"), list):
        return _render_summary(snapshot, top=top)
    lines: list[str] = []
    total = snapshot.get("total_pj") or 0.0
    lines.append(f"attributed energy: {total:,.1f} pJ "
                 f"({len(snapshot.get('cells', []))} cells)")

    def section(title: str, table: dict, order=None) -> None:
        lines.append(f"  by {title}:")
        keys = order if order is not None else sorted(
            table, key=lambda k: -table[k]["pj"])
        for key in keys:
            slot = table.get(key)
            if slot is None:
                continue
            share = slot["pj"] / total if total else 0.0
            lines.append(f"    {str(key):<12} {slot['pj']:>16,.1f} pJ  "
                         f"{share:>6.1%}  {slot['events']:>12,} events")

    section("unit", rollup_units(snapshot))
    section("class", rollup_classes(snapshot),
            order=[c for c in CLASSES if c in rollup_classes(snapshot)])
    section("region", rollup_regions(snapshot),
            order=("secured", "unsecured", "overhead"))
    hotspots = top_hotspots(snapshot, n=top)
    if hotspots:
        lines.append(f"  top {len(hotspots)} hotspots:")
        for row in hotspots:
            where = f"0x{row['pc']:08x}"
            line = f" line {row['line']}" if row["line"] else ""
            mark = " [sliced]" if row["sliced"] else ""
            asm = f"  {row['asm']}" if row["asm"] else ""
            lines.append(f"    {where} {row['pj']:>14,.1f} pJ "
                         f"{row['share']:>6.1%}{asm}{line}{mark}")
    by_line = {line: slot for line, slot in rollup_lines(snapshot).items()
               if line is not None}
    if by_line:
        lines.append("  by source line:")
        for line in sorted(by_line, key=lambda ln: -by_line[ln]["pj"])[:top]:
            slot = by_line[line]
            share = slot["pj"] / total if total else 0.0
            mark = " [sliced]" if slot["sliced"] else ""
            lines.append(f"    line {line:<5} {slot['pj']:>16,.1f} pJ  "
                         f"{share:>6.1%}{mark}")
    return "\n".join(lines)


def _render_summary(summary: dict, top: int = 20) -> str:
    """ASCII rendering of a :func:`summarize_attribution` rollup."""
    lines: list[str] = []
    total = summary.get("total_pj") or 0.0
    lines.append(f"attributed energy: {total:,.1f} pJ "
                 f"({summary.get('cells', 0)} cells, summarized)")

    def section(title: str, table: dict, order=None) -> None:
        if not table:
            return
        lines.append(f"  by {title}:")
        keys = order if order is not None else sorted(
            table, key=lambda k: -table[k]["pj"])
        for key in keys:
            slot = table.get(key)
            if slot is None:
                continue
            share = slot["pj"] / total if total else 0.0
            lines.append(f"    {str(key):<12} {slot['pj']:>16,.1f} pJ  "
                         f"{share:>6.1%}  {slot['events']:>12,} events")

    section("unit", summary.get("by_unit", {}))
    section("class", summary.get("by_class", {}),
            order=[c for c in CLASSES if c in summary.get("by_class", {})])
    section("region", summary.get("by_region", {}),
            order=[name for name in ("secured", "unsecured", "overhead")
                   if name in summary.get("by_region", {})])
    hotspots = summary.get("top_hotspots", [])[:top]
    if hotspots:
        lines.append(f"  top {len(hotspots)} hotspots:")
        for row in hotspots:
            where = f"0x{row['pc']:08x}"
            line = f" line {row['line']}" if row.get("line") else ""
            mark = " [sliced]" if row.get("sliced") else ""
            asm = f"  {row['asm']}" if row.get("asm") else ""
            lines.append(f"    {where} {row['pj']:>14,.1f} pJ "
                         f"{row['share']:>6.1%}{asm}{line}{mark}")
    return "\n".join(lines)
