"""Metrics registry: labeled counters, gauges, and histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
temporal half).  It is deliberately Prometheus-shaped — metrics are named,
each name owns a family of *series* keyed by a label set, and the three
instrument kinds have the usual semantics:

* :class:`Counter` — monotonically increasing totals
  (``instructions_executed{opcode=xor, secure=true}``);
* :class:`Gauge` — point-in-time values that may also accumulate
  (``energy_component_pj{component=regfile}``);
* :class:`Histogram` — bucketed distributions with sum/count/min/max
  (``job_wall_seconds``).

Everything is plain Python (no numpy, no threads, no I/O) so a snapshot
is JSON-serializable as-is and a worker process can ship its registry
back to the parent through the engine's :class:`~repro.harness.engine.JobResult`.
Merging snapshots is associative and, applied in submission order, makes
parallel metric aggregation deterministic regardless of worker scheduling.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional

#: Series-per-metric ceiling.  Labeled metrics multiply: a label whose
#: value is unbounded (an address, a plaintext) would grow the registry
#: without limit, so crossing the ceiling raises instead of silently
#: dropping data.
MAX_SERIES_PER_METRIC = 1024

#: Default histogram bucket upper bounds (seconds-flavored, but any unit
#: works); an implicit +Inf bucket always terminates the list.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   50.0, 100.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((name, _label_value(value))
                        for name, value in labels.items()))


def _label_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


class CardinalityError(ValueError):
    """A metric exceeded :data:`MAX_SERIES_PER_METRIC` label sets."""


#: Quantiles published alongside every histogram series (summaries,
#: snapshots, and ``obs summarize`` totals).
SUMMARY_QUANTILES = (0.50, 0.95, 0.99)


def bucket_quantile(bounds: tuple[float, ...], counts: Iterable[int],
                    q: float, minimum: Optional[float] = None,
                    maximum: Optional[float] = None) -> float:
    """Estimate the ``q``-quantile of a bucketed distribution.

    Standard histogram-quantile estimation: find the bucket holding the
    target rank and interpolate linearly across its ``(lower, upper]``
    range.  The exact ``minimum``/``maximum`` the series tracked tighten
    the estimate — they bound the open-ended +Inf bucket and clamp the
    result, so a one-observation histogram reports its actual value
    instead of a bucket midpoint.  Empty distributions report 0.
    """
    counts = list(counts)
    total = sum(counts)
    if total <= 0:
        return 0.0
    q = min(max(float(q), 0.0), 1.0)
    rank = q * total
    cumulative = 0
    value: Optional[float] = None
    for index, count in enumerate(counts):
        cumulative += count
        if count and cumulative >= rank:
            lower = bounds[index - 1] if index > 0 \
                else (minimum if minimum is not None else 0.0)
            if index < len(bounds):
                upper = bounds[index]
            else:  # +Inf bucket: only the tracked max bounds it
                upper = maximum if maximum is not None else lower
            position = (rank - (cumulative - count)) / count
            value = lower + (upper - lower) * position
            break
    if value is None:
        value = maximum if maximum is not None \
            else (bounds[-1] if bounds else 0.0)
    if minimum is not None:
        value = max(value, minimum)
    if maximum is not None:
        value = min(value, maximum)
    return float(value)


class _Metric:
    """Shared series bookkeeping for the three instrument kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, object] = {}

    def _series_for(self, labels: dict[str, object], default):
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= MAX_SERIES_PER_METRIC:
                raise CardinalityError(
                    f"metric {self.name!r} exceeded "
                    f"{MAX_SERIES_PER_METRIC} label sets; an unbounded "
                    "label value (address, plaintext, ...) is being used "
                    "as a metric label")
            series = self._series[key] = default()
            return series
        return series

    def series(self) -> Iterator[tuple[LabelKey, object]]:
        yield from self._series.items()

    def __len__(self) -> int:
        return len(self._series)


class Counter(_Metric):
    """Monotonic total, one value per label set."""

    kind = "counter"

    def inc(self, value: float = 1, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None:
            self._series_for(labels, float)
            current = 0.0
        self._series[key] = current + value

    def value(self, **labels) -> float:
        return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label set."""
        return float(sum(self._series.values()))


class Gauge(_Metric):
    """Point-in-time value.  ``set`` overwrites; ``add`` accumulates.

    Merging two snapshots *sums* gauge series (see
    :meth:`MetricsRegistry.merge_snapshot`): the gauges this stack
    publishes — per-component energy totals, cycle counts — are per-run
    quantities whose batch-level aggregate is their sum.
    """

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series_for(labels, float)
        self._series[_label_key(labels)] = float(value)

    def add(self, value: float, **labels) -> None:
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None:
            self._series_for(labels, float)
            current = 0.0
        self._series[key] = current + value

    def value(self, **labels) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None


class Histogram(_Metric):
    """Bucketed distribution with cumulative-friendly scalars.

    Buckets are upper bounds with ``value <= bound`` semantics (a value
    exactly on a bound lands in that bucket); an implicit +Inf bucket
    catches the rest.  ``min``/``max`` are tracked exactly so batch
    profiles don't need the raw observations.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        series: _HistogramSeries = self._series_for(
            labels, lambda: _HistogramSeries(len(self.buckets) + 1))
        index = len(self.buckets)  # +Inf
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        series.counts[index] += 1
        series.sum += value
        series.count += 1
        series.min = value if series.min is None else min(series.min, value)
        series.max = value if series.max is None else max(series.max, value)

    def summary(self, **labels) -> dict[str, float]:
        """``{count, sum, mean, min, max, p50, p95, p99}`` of one series
        (zeros if unseen).  Percentiles are bucket-interpolated estimates
        clamped by the exact min/max (:func:`bucket_quantile`).

        Empty and zero-count series — an unseen label set, or a series
        created by merging a snapshot that never observed — report the
        NaN-free zero defaults instead of dividing by their zero count;
        non-finite scalars (a NaN observation poisoning ``sum``) are
        likewise pinned to 0 so summaries stay JSON- and SLO-safe.
        """
        series = self._series.get(_label_key(labels))
        if series is None or series.count <= 0:
            out = {"count": 0, "sum": 0.0, "mean": 0.0,
                   "min": 0.0, "max": 0.0}
            out.update({_quantile_key(q): 0.0 for q in SUMMARY_QUANTILES})
            return out
        total = _finite_or_zero(series.sum)
        out = {"count": series.count, "sum": total,
               "mean": total / series.count,
               "min": _finite_or_zero(series.min),
               "max": _finite_or_zero(series.max)}
        out.update(self._quantiles(series))
        return out

    def quantile(self, q: float, **labels) -> float:
        """Estimated ``q``-quantile of one series (0 if unseen or never
        observed)."""
        series = self._series.get(_label_key(labels))
        if series is None or series.count <= 0:
            return 0.0
        return bucket_quantile(self.buckets, series.counts, q,
                               minimum=_finite_or_none(series.min),
                               maximum=_finite_or_none(series.max))

    def _quantiles(self, series: "_HistogramSeries") -> dict[str, float]:
        minimum = _finite_or_none(series.min)
        maximum = _finite_or_none(series.max)
        return {_quantile_key(q): bucket_quantile(self.buckets,
                                                  series.counts, q,
                                                  minimum=minimum,
                                                  maximum=maximum)
                for q in SUMMARY_QUANTILES}


class MetricsRegistry:
    """A namespace of metrics plus snapshot/merge plumbing.

    One registry is *current* at any time (see :func:`repro.obs.registry`);
    the engine pushes a fresh scoped registry around each job so worker
    metrics serialize independently and merge deterministically.
    """

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}

    # -- instrument accessors (create on first use) --------------------

    def _get(self, name: str, cls, help: str = "", **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help=help, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}, not {cls.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def reset(self) -> None:
        self._metrics.clear()

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable dump of every series of every metric."""
        out: dict = {}
        for name, metric in sorted(self._metrics.items()):
            entry: dict = {"kind": metric.kind, "series": []}
            if metric.help:
                entry["help"] = metric.help
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            for key, series in sorted(metric.series()):
                labels = {k: v for k, v in key}
                if isinstance(metric, Histogram):
                    row = {
                        "labels": labels, "counts": list(series.counts),
                        "sum": series.sum, "count": series.count,
                        "min": series.min, "max": series.max}
                    # Published estimates ride along for manifest readers;
                    # merge_snapshot ignores them (it re-derives from the
                    # raw counts, which stay the source of truth).
                    row.update(metric._quantiles(series))
                    entry["series"].append(row)
                else:
                    entry["series"].append({"labels": labels,
                                            "value": series})
            out[name] = entry
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (from a worker or a manifest) into this registry.

        Counters and histograms add; gauges add too (their series here are
        per-run totals).  Applied in submission order this is deterministic
        whatever order the workers finished in.
        """
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""))
                for series in entry["series"]:
                    counter.inc(series["value"], **series["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""))
                for series in entry["series"]:
                    gauge.add(series["value"], **series["labels"])
            elif kind == "histogram":
                histogram = self.histogram(name, entry.get("help", ""),
                                           buckets=entry["buckets"])
                if tuple(entry["buckets"]) != histogram.buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge")
                for series in entry["series"]:
                    target: _HistogramSeries = histogram._series_for(
                        series["labels"],
                        lambda: _HistogramSeries(len(histogram.buckets) + 1))
                    for index, count in enumerate(series["counts"]):
                        target.counts[index] += count
                    target.sum += series["sum"]
                    target.count += series["count"]
                    for attr, pick in (("min", min), ("max", max)):
                        incoming = series.get(attr)
                        if incoming is None:
                            continue
                        current = getattr(target, attr)
                        setattr(target, attr, incoming if current is None
                                else pick(current, incoming))
            else:
                raise ValueError(f"snapshot entry {name!r} has unknown "
                                 f"kind {kind!r}")


def _quantile_key(q: float) -> str:
    return f"p{round(q * 100):d}"


def _finite_or_zero(value: Optional[float]) -> float:
    value = 0.0 if value is None else float(value)
    return value if math.isfinite(value) else 0.0


def _finite_or_none(value: Optional[float]) -> Optional[float]:
    if value is None or not math.isfinite(value):
        return None
    return float(value)


def snapshot_totals(snapshot: dict) -> dict[str, float]:
    """Flatten a snapshot to ``name{k=v,...} -> value`` scalar rows.

    Histograms contribute ``name_count``/``name_sum`` plus estimated
    ``name_p50``/``name_p95``/``name_p99`` rows (recomputed from the raw
    bucket counts, so manifests written before quantile publishing still
    summarize with percentiles).  This is the view ``repro obs
    summarize`` renders and diffs.
    """
    rows: dict[str, float] = {}

    def format_name(name: str, labels: dict[str, str]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{name}{{{inner}}}"

    for name, entry in sorted(snapshot.items()):
        for series in entry["series"]:
            labels = series.get("labels", {})
            if entry["kind"] == "histogram":
                rows[format_name(name + "_count", labels)] = series["count"]
                rows[format_name(name + "_sum", labels)] = series["sum"]
                bounds = tuple(entry.get("buckets", ()))
                for q in SUMMARY_QUANTILES:
                    rows[format_name(name + "_" + _quantile_key(q),
                                     labels)] = bucket_quantile(
                        bounds, series.get("counts", ()), q,
                        minimum=series.get("min"),
                        maximum=series.get("max"))
            else:
                rows[format_name(name, labels)] = series["value"]
    return rows
