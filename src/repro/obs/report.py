"""Self-contained HTML leakage report (``repro obs report``).

One HTML file, no external assets: charts are inline SVG, styling is an
embedded stylesheet, and everything renders offline — the artifact can be
attached to a CI run or mailed around like the paper's figures.

Sections (each rendered only when its data is present):

* headline summary (experiment id, config, scalar observables);
* per-cycle charts — the paper's Figs. 6-12 as decimated SVG polylines,
  with multi-series overlays for A/B comparisons;
* the leakage-budget verdict table (:mod:`repro.obs.leakage`), colored
  by pass/fail;
* energy attribution — per-unit stacked bars (split by instruction
  class when the full snapshot is available), secured/unsecured/overhead
  region shares, and the top-N hotspot table with source lines
  (:mod:`repro.obs.attribution`).

Entry points: :func:`build_report` (compose from parts),
:func:`report_from_manifest` (everything a run manifest carries), and
:func:`write_report`.
"""

from __future__ import annotations

import math
from html import escape
from pathlib import Path
from typing import Optional, Sequence, Union

from .attribution import CLASSES

PathLike = Union[str, Path]

#: Colorblind-safe palette (Okabe-Ito), cycled across series/segments.
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7",
           "#E69F00", "#56B4E9", "#F0E442", "#000000")

#: Maximum polyline points per chart; longer series are bucket-averaged.
MAX_POINTS = 800

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
       sans-serif; margin: 2rem auto; max-width: 62rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #0072B2;
     padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .75rem 0; font-size: .85rem; }
th, td { border: 1px solid #cbd5e1; padding: .3rem .6rem;
         text-align: left; }
th { background: #eef2f7; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.pass td.verdict { background: #d1e7d1; color: #14532d;
                     font-weight: 600; }
tr.fail td.verdict { background: #f8d7da; color: #7f1d1d;
                     font-weight: 600; }
tr.info td.verdict { color: #475569; }
.verdict-banner { display: inline-block; padding: .25rem .9rem;
                  border-radius: .4rem; font-weight: 700; }
.verdict-banner.pass { background: #d1e7d1; color: #14532d; }
.verdict-banner.fail { background: #f8d7da; color: #7f1d1d; }
figure { margin: 1rem 0; }
figcaption { font-size: .8rem; color: #475569; margin-top: .25rem; }
code { background: #eef2f7; padding: 0 .25rem; border-radius: .2rem; }
.meta { color: #475569; font-size: .8rem; }
svg text { font-family: inherit; }
"""


# ---------------------------------------------------------------------------
# series handling
# ---------------------------------------------------------------------------


def decimate(values: Sequence[float], max_points: int = MAX_POINTS
             ) -> list[float]:
    """Bucket-mean a series down to at most ``max_points`` samples."""
    values = [float(v) for v in values]
    n = len(values)
    if n <= max_points:
        return values
    step = n / max_points
    out = []
    for i in range(max_points):
        lo, hi = int(i * step), max(int(i * step) + 1, int((i + 1) * step))
        bucket = values[lo:hi]
        out.append(sum(bucket) / len(bucket))
    return out


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if math.isfinite(v)]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.2f}"


# ---------------------------------------------------------------------------
# SVG primitives
# ---------------------------------------------------------------------------


def svg_line_chart(series: dict[str, Sequence[float]], title: str = "",
                   width: int = 880, height: int = 240,
                   unit: str = "pJ") -> str:
    """Overlay line chart of one or more equally-sampled series."""
    pad_l, pad_r, pad_t, pad_b = 64, 12, 22, 30
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    decimated = {name: decimate(values) for name, values in series.items()
                 if len(values)}
    if not decimated:
        return ""
    all_values = _finite([v for vs in decimated.values() for v in vs])
    if not all_values:
        return ""
    low, high = min(all_values), max(all_values)
    if low > 0:
        low = 0.0
    if high < 0:
        high = 0.0
    span = (high - low) or 1.0

    def x_of(i: int, n: int) -> float:
        return pad_l + (plot_w * i / max(1, n - 1))

    def y_of(v: float) -> float:
        return pad_t + plot_h * (1 - (v - low) / span)

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">']
    if title:
        parts.append(f'<text x="{pad_l}" y="14" font-size="12" '
                     f'font-weight="600">{escape(title)}</text>')
    # Axis frame + zero line + min/max ticks.
    parts.append(f'<rect x="{pad_l}" y="{pad_t}" width="{plot_w}" '
                 f'height="{plot_h}" fill="#f8fafc" stroke="#cbd5e1"/>')
    zero_y = y_of(0.0)
    if low < 0 < high:
        parts.append(f'<line x1="{pad_l}" y1="{zero_y:.1f}" '
                     f'x2="{pad_l + plot_w}" y2="{zero_y:.1f}" '
                     f'stroke="#94a3b8" stroke-dasharray="3 3"/>')
    for value, y in ((high, pad_t + 8), (low, pad_t + plot_h)):
        parts.append(f'<text x="{pad_l - 6}" y="{y}" font-size="10" '
                     f'text-anchor="end" fill="#475569">'
                     f'{_fmt(value)}</text>')
    parts.append(f'<text x="{pad_l - 6}" y="{pad_t + plot_h / 2:.0f}" '
                 f'font-size="10" text-anchor="end" fill="#475569">'
                 f'{escape(unit)}</text>')
    # Series polylines + legend.
    legend_x = pad_l + 4
    for index, (name, values) in enumerate(decimated.items()):
        color = PALETTE[index % len(PALETTE)]
        points = " ".join(
            f"{x_of(i, len(values)):.1f},{y_of(v):.1f}"
            for i, v in enumerate(values) if math.isfinite(v))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="1.2"/>')
        if len(decimated) > 1 or name != "series":
            parts.append(f'<rect x="{legend_x}" y="{pad_t + 4}" width="10" '
                         f'height="10" fill="{color}"/>')
            parts.append(f'<text x="{legend_x + 13}" y="{pad_t + 13}" '
                         f'font-size="10">{escape(name)}</text>')
            legend_x += 22 + 6 * len(name)
    parts.append(f'<text x="{pad_l}" y="{height - 8}" font-size="10" '
                 f'fill="#475569">cycle →</text>')
    parts.append("</svg>")
    return "".join(parts)


def svg_stacked_bars(bars: dict[str, dict[str, float]], title: str = "",
                     width: int = 880, unit: str = "pJ") -> str:
    """Horizontal stacked bars: one bar per key, segments per sub-key."""
    bars = {name: {seg: v for seg, v in segments.items() if v > 0}
            for name, segments in bars.items()}
    bars = {name: segments for name, segments in bars.items() if segments}
    if not bars:
        return ""
    segment_names: list[str] = [c for c in CLASSES
                                if any(c in segs for segs in bars.values())]
    for segs in bars.values():
        for name in segs:
            if name not in segment_names:
                segment_names.append(name)
    color_of = {name: PALETTE[i % len(PALETTE)]
                for i, name in enumerate(segment_names)}
    bar_h, gap, pad_l, pad_r, pad_t = 22, 8, 110, 90, 22
    legend_h = 18
    height = pad_t + len(bars) * (bar_h + gap) + legend_h + 8
    max_total = max(sum(segs.values()) for segs in bars.values())
    plot_w = width - pad_l - pad_r

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">']
    if title:
        parts.append(f'<text x="{pad_l}" y="14" font-size="12" '
                     f'font-weight="600">{escape(title)}</text>')
    y = pad_t
    for name, segments in sorted(bars.items(),
                                 key=lambda kv: -sum(kv[1].values())):
        total = sum(segments.values())
        parts.append(f'<text x="{pad_l - 8}" y="{y + bar_h - 7}" '
                     f'font-size="11" text-anchor="end">{escape(name)}'
                     f'</text>')
        x = float(pad_l)
        for segment in segment_names:
            value = segments.get(segment, 0.0)
            if value <= 0:
                continue
            w = plot_w * value / max_total
            parts.append(f'<rect x="{x:.1f}" y="{y}" width="{max(w, 0.5):.1f}" '
                         f'height="{bar_h}" fill="{color_of[segment]}">'
                         f'<title>{escape(segment)}: {_fmt(value)} '
                         f'{escape(unit)}</title></rect>')
            x += w
        parts.append(f'<text x="{x + 6:.1f}" y="{y + bar_h - 7}" '
                     f'font-size="10" fill="#475569">'
                     f'{_fmt(total)} {escape(unit)}</text>')
        y += bar_h + gap
    # Legend row.
    x = float(pad_l)
    for segment in segment_names:
        parts.append(f'<rect x="{x:.1f}" y="{y}" width="10" height="10" '
                     f'fill="{color_of[segment]}"/>')
        parts.append(f'<text x="{x + 13:.1f}" y="{y + 9}" font-size="10">'
                     f'{escape(segment)}</text>')
        x += 26 + 6 * len(segment)
    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------------
# HTML sections
# ---------------------------------------------------------------------------


def _kv_table(record: dict, caption: str = "") -> str:
    rows = []
    for key, value in record.items():
        shown = _fmt(value) if isinstance(value, float) else str(value)
        rows.append(f"<tr><td>{escape(str(key))}</td>"
                    f'<td class="num">{escape(shown)}</td></tr>')
    cap = f"<caption>{escape(caption)}</caption>" if caption else ""
    return (f"<table>{cap}<tr><th>key</th><th>value</th></tr>"
            + "".join(rows) + "</table>")


def leakage_section(leakage: dict) -> str:
    """Verdict table(s) for one report dict or a mapping of several."""
    reports = [leakage] if "regions" in leakage else list(leakage.values())
    parts = ["<h2>Leakage budget</h2>"]
    for report in reports:
        verdict = "pass" if report.get("passed") else "fail"
        label = report.get("label") or "differential"
        budget = report.get("budget_pj", 0.0)
        banner = (f'<p><span class="verdict-banner {verdict}">'
                  f'{verdict.upper()}</span> '
                  f"<strong>{escape(str(label))}</strong> — "
                  f"budget {_fmt(budget)} pJ")
        if report.get("budget_t") is not None:
            banner += f", |t| &lt; {_fmt(report['budget_t'])}"
        banner += (f", {report.get('violations', 0)} violation(s)</p>")
        parts.append(banner)
        rows = []
        for region in report.get("regions", []):
            protected = region.get("protected")
            passed = region.get("passed")
            css = ("pass" if passed else "fail") if protected else "info"
            cells = [
                f"<td>{escape(str(region.get('region', '?')))}</td>",
                f'<td class="num">{region.get("start", 0)}&ndash;'
                f'{region.get("end", 0)}</td>',
                f"<td>{'yes' if protected else 'no'}</td>",
                f'<td class="num">{_fmt(region.get("max_abs_diff_pj", 0.0))}'
                f"</td>",
                f'<td class="num">{region.get("leaking_cycles", 0)}</td>',
            ]
            t_max = region.get("welch_t_max")
            cells.append(f'<td class="num">'
                         f'{_fmt(t_max) if t_max is not None else "-"}</td>')
            if protected:
                text = "PASS" if passed else "FAIL"
            else:
                text = "unprotected"
            cells.append(f'<td class="verdict">{text}</td>')
            rows.append(f'<tr class="{css}">' + "".join(cells) + "</tr>")
        parts.append(
            "<table><tr><th>region</th><th>cycles</th><th>protected</th>"
            "<th>max |Δ| pJ</th><th>leaking cycles</th><th>max |t|</th>"
            "<th>verdict</th></tr>" + "".join(rows) + "</table>")
    return "".join(parts)


def _unit_class_matrix(attribution: dict) -> dict[str, dict[str, float]]:
    """unit -> class -> pJ; from full cells when present, else by_unit."""
    cells = attribution.get("cells")
    if isinstance(cells, list):
        matrix: dict[str, dict[str, float]] = {}
        for pc, unit, iclass, _, pj, _ in cells:
            row = matrix.setdefault(unit, {})
            row[iclass] = row.get(iclass, 0.0) + pj
        return matrix
    return {unit: {"total": slot["pj"]}
            for unit, slot in attribution.get("by_unit", {}).items()}


def attribution_section(attribution: dict) -> str:
    """Stacked per-unit bars, region shares, and the hotspot table."""
    from .attribution import summarize_attribution

    if isinstance(attribution.get("cells"), list):
        summary = summarize_attribution(attribution)
    else:
        summary = attribution
    parts = ["<h2>Energy attribution</h2>"]
    parts.append(f'<p class="meta">{_fmt(summary.get("total_pj", 0.0))} pJ '
                 f'attributed across {summary.get("cells", 0)} '
                 f"(pc, unit, class) cells.</p>")
    matrix = _unit_class_matrix(attribution)
    chart = svg_stacked_bars(matrix,
                             title="per pipeline unit, by instruction class")
    if chart:
        parts.append(f"<figure>{chart}</figure>")
    by_region = summary.get("by_region", {})
    if by_region:
        region_bars = {name: {"energy": slot["pj"]}
                       for name, slot in by_region.items()}
        chart = svg_stacked_bars(
            region_bars, title="secured slice vs rest vs overhead")
        parts.append(f"<figure>{chart}</figure>")
    hotspots = summary.get("top_hotspots", [])
    if hotspots:
        parts.append("<h2>Hotspots</h2>")
        rows = []
        for spot in hotspots:
            rows.append(
                "<tr>"
                f'<td class="num">0x{spot.get("pc", 0):04x}</td>'
                f"<td><code>{escape(str(spot.get('asm') or '?'))}</code></td>"
                f'<td class="num">{spot.get("line") or "-"}</td>'
                f"<td>{'yes' if spot.get('sliced') else 'no'}</td>"
                f'<td class="num">{_fmt(spot.get("pj", 0.0))}</td>'
                f'<td class="num">{spot.get("events", 0):,}</td>'
                f'<td class="num">{100 * spot.get("share", 0.0):.1f}%</td>'
                "</tr>")
        parts.append(
            "<table><tr><th>pc</th><th>instruction</th><th>line</th>"
            "<th>secured</th><th>pJ</th><th>events</th><th>share</th></tr>"
            + "".join(rows) + "</table>")
    return "".join(parts)


def flamegraph_section(spans: Sequence[dict]) -> str:
    """Wall/CPU icicle charts of the recorded span forest."""
    # Imported here: flamegraph reuses this module's palette, so a
    # module-level import would be circular.
    from .flamegraph import svg_flamegraph

    charts = []
    for metric, caption in (("wall", "wall time"), ("cpu", "CPU time")):
        chart = svg_flamegraph(spans, metric=metric)
        if chart:
            charts.append(f"<figure>{chart}<figcaption>span profile by "
                          f"{caption}; same-name spans merged, hover for "
                          f"timings</figcaption></figure>")
    if not charts:
        return ""
    return "<h2>Where the time went</h2>" + "".join(charts)


def charts_section(series: dict[str, Sequence[float]],
                   title: str = "Per-cycle energy") -> str:
    charts = []
    for name, values in series.items():
        chart = svg_line_chart({name: values}, title=name)
        if chart:
            charts.append(f"<figure>{chart}<figcaption>{escape(name)}: "
                          f"{len(values)} samples"
                          + (f", decimated to {MAX_POINTS}"
                             if len(values) > MAX_POINTS else "")
                          + "</figcaption></figure>")
    if not charts:
        return ""
    return f"<h2>{escape(title)}</h2>" + "".join(charts)


# ---------------------------------------------------------------------------
# document assembly
# ---------------------------------------------------------------------------


def build_report(title: str,
                 summary: Optional[dict] = None,
                 series: Optional[dict[str, Sequence[float]]] = None,
                 overlays: Optional[dict[str, dict[str, Sequence[float]]]]
                 = None,
                 leakage: Optional[dict] = None,
                 attribution: Optional[dict] = None,
                 spans: Optional[Sequence[dict]] = None,
                 meta: Optional[dict] = None,
                 notes: str = "") -> str:
    """Compose the self-contained HTML document from its parts.

    ``series`` maps name -> per-cycle values (one chart each);
    ``overlays`` maps chart-title -> {label: values} for multi-series
    A/B charts; ``leakage`` is a :class:`LeakageReport` dict (or mapping
    of them); ``attribution`` a full or summarized snapshot; ``spans`` a
    recorded span forest (rendered as wall/CPU flamegraphs); ``meta``
    small provenance strings for the footer.
    """
    body = [f"<h1>{escape(title)}</h1>"]
    if leakage:
        passed = leakage.get("passed") if "regions" in leakage else \
            all(r.get("passed") for r in leakage.values())
        verdict = "pass" if passed else "fail"
        body.append(f'<p><span class="verdict-banner {verdict}">leakage '
                    f"budget: {verdict.upper()}</span></p>")
    if summary:
        body.append("<h2>Summary</h2>")
        body.append(_kv_table(summary))
    if overlays:
        body.append("<h2>Differential charts</h2>")
        for chart_title, chart_series in overlays.items():
            chart = svg_line_chart(chart_series, title=chart_title)
            if chart:
                body.append(f"<figure>{chart}</figure>")
    if series:
        body.append(charts_section(series))
    if leakage:
        body.append(leakage_section(leakage))
    if attribution:
        body.append(attribution_section(attribution))
    if spans:
        body.append(flamegraph_section(spans))
    if notes:
        body.append(f'<p class="meta">{escape(notes)}</p>')
    if meta:
        footer = " · ".join(f"{escape(str(k))}: {escape(str(v))}"
                            for k, v in meta.items())
        body.append(f'<hr/><p class="meta">{footer}</p>')
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'/>"
            f"<title>{escape(title)}</title>"
            f"<style>{_STYLE}</style></head><body>"
            + "".join(body) + "</body></html>")


def report_from_manifest(manifest: dict,
                         result: Optional[dict] = None) -> str:
    """Build the HTML report from a run manifest (and optionally the
    saved experiment-result JSON, which carries the per-cycle series)."""
    experiment_id = manifest.get("experiment_id") or "run"
    title = f"repro leakage report — {experiment_id}"
    summary = dict(manifest.get("summary") or {})
    series = {}
    leakage = manifest.get("leakage")
    notes = ""
    if result:
        series = {name: values for name, values
                  in (result.get("series") or {}).items()
                  if isinstance(values, list)}
        leakage = leakage or result.get("leakage")
        summary = summary or dict(result.get("summary") or {})
        notes = result.get("notes", "")
    package = manifest.get("package", {})
    meta = {
        "schema": manifest.get("schema", "?"),
        "package": f"{package.get('name', '?')} "
                   f"{package.get('version', '?')}",
        "toolchain": manifest.get("toolchain_fingerprint", "?"),
        "created": manifest.get("created_iso", "?"),
    }
    return build_report(title, summary=summary, series=series,
                        leakage=leakage,
                        attribution=manifest.get("attribution"),
                        spans=manifest.get("spans"),
                        meta=meta, notes=notes)


def _timeline_section(timeline: Sequence[dict]) -> str:
    """Lifecycle table: one row per recorded transition."""
    if not timeline:
        return ""
    rows = []
    for entry in timeline:
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(entry.items())
            if key not in ("event", "t_s", "ts"))
        rows.append(
            f"<tr><td>{escape(str(entry.get('event', '?')))}</td>"
            f'<td class="num">{float(entry.get("t_s", 0.0)):.6f}</td>'
            f"<td>{escape(detail)}</td></tr>")
    return ("<h2>Lifecycle timeline</h2>"
            "<table><tr><th>event</th><th>t+ (s)</th><th>detail</th></tr>"
            + "".join(rows) + "</table>")


def _phase_latency_section(spans: Sequence[dict],
                           queued_s: Optional[float]) -> str:
    """Per-phase wall/CPU breakdown from the request's span forest."""
    from .spans import phase_totals

    totals = phase_totals(list(spans)) if spans else {}
    if not totals and queued_s is None:
        return ""
    rows = []
    if queued_s is not None:
        rows.append('<tr><td>queue wait</td>'
                    f'<td class="num">{queued_s:.6f}</td>'
                    '<td class="num">-</td><td class="num">1</td></tr>')
    for name, slot in sorted(totals.items(),
                             key=lambda kv: -kv[1]["wall_s"]):
        rows.append(
            f"<tr><td>{escape(name)}</td>"
            f'<td class="num">{slot["wall_s"]:.6f}</td>'
            f'<td class="num">{slot["cpu_s"]:.6f}</td>'
            f'<td class="num">{slot["count"]}</td></tr>')
    return ("<h2>Per-phase latency</h2>"
            "<table><tr><th>phase</th><th>wall (s)</th><th>cpu (s)</th>"
            "<th>spans</th></tr>" + "".join(rows) + "</table>")


def svg_sparkline(values: Sequence[float], width: int = 220,
                  height: int = 36, color: str = PALETTE[0]) -> str:
    """Minimal inline sparkline (no axes) for the dashboard tiles."""
    values = _finite([float(v) for v in values])
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    points = " ".join(
        f"{2 + (width - 4) * i / (len(values) - 1):.1f},"
        f"{2 + (height - 4) * (1 - (v - low) / span):.1f}"
        for i, v in enumerate(values))
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" role="img">'
            f'<polyline points="{points}" fill="none" '
            f'stroke="{color}" stroke-width="1.5"/></svg>')


def latency_quantiles(snapshot: dict,
                      metric: str = "service_request_seconds"
                      ) -> dict[str, float]:
    """p50/p95/p99 across *all* series of one histogram metric.

    The snapshot publishes per-series estimates; the dashboard wants the
    whole-service view, so the raw bucket counts are merged and
    re-estimated with :func:`~repro.obs.registry.bucket_quantile`.
    """
    from .registry import bucket_quantile

    entry = snapshot.get(metric)
    if not entry or entry.get("kind") != "histogram":
        return {}
    bounds = tuple(float(bound) for bound in entry.get("buckets", []))
    merged: Optional[list[int]] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    for series in entry.get("series", []):
        counts = [int(count) for count in series.get("counts", [])]
        if merged is None:
            merged = counts
        else:
            merged = [a + b for a, b in zip(merged, counts)]
        for bound_name, picker in (("min", min), ("max", max)):
            value = series.get(bound_name)
            if value is not None and math.isfinite(value):
                current = minimum if bound_name == "min" else maximum
                chosen = value if current is None \
                    else picker(current, value)
                if bound_name == "min":
                    minimum = chosen
                else:
                    maximum = chosen
    if merged is None or not sum(merged):
        return {}
    return {name: bucket_quantile(bounds, merged, q,
                                  minimum=minimum, maximum=maximum)
            for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))}


def dashboard_html(health: dict, snapshot: dict,
                   history: Sequence[dict],
                   refresh_s: float = 2.0) -> str:
    """Self-contained auto-refreshing SLO dashboard (``GET /dashboard``).

    ``history`` is the server's rolling sample list ({queue_depth,
    inflight, p95_s, goodput} per sample) rendered as sparklines; the
    page re-fetches itself every ``refresh_s`` via ``<meta refresh>`` —
    no JavaScript, no external assets.
    """
    status = health.get("status", "?")
    quantiles = latency_quantiles(snapshot)
    outcome = "pass" if status == "ok" else "fail"
    body = ["<h1>repro service dashboard</h1>",
            f'<p><span class="verdict-banner {outcome}">'
            f"{escape(str(status))}</span> "
            f'<span class="meta">uptime '
            f'{_fmt(float(health.get("uptime_s", 0.0)))}s · auto-refresh '
            f"every {_fmt(refresh_s)}s</span></p>"]
    stats = {
        "queue depth": f'{health.get("queue_depth", 0)}'
                       f' / {health.get("queue_capacity", 0)}',
        "in flight": health.get("inflight", 0),
        "workers alive": f'{health.get("workers_alive", 0)}'
                         f' / {health.get("workers", 0)}',
        "breaker open": health.get("breaker_open", 0),
    }
    for name, value in quantiles.items():
        stats[f"latency {name} (s)"] = _fmt(value)
    for state, count in (health.get("terminal") or {}).items():
        stats[f"terminal: {state}"] = count
    cache = health.get("verdict_cache") or {}
    if cache:
        stats["verdict cache hits"] = (f'{cache.get("hits", 0)}'
                                       f' (+{cache.get("coalesced", 0)}'
                                       " coalesced)")
        stats["verdict cache misses"] = cache.get("misses", 0)
        stats["verdict cache entries"] = (
            f'{cache.get("entries", 0)}'
            f' ({cache.get("bytes", 0)} / {cache.get("max_bytes", 0)} B)')
        stats["verdict cache evictions"] = cache.get("evictions", 0)
    pool = health.get("pool") or {}
    if pool:
        stats["pool leases"] = (f'{pool.get("leases", 0)}'
                                f' ({pool.get("warm_acquires", 0)} warm)')
        stats["pool rebuilds"] = pool.get("rebuilds", 0)
        stats["pool generation"] = (
            f'{pool.get("generation", 0)}'
            f' ({"live" if pool.get("live") else "down"})')
    body.append(_kv_table(stats, caption="service level"))
    if history:
        tiles = []
        for key, label in (("queue_depth", "queue depth"),
                           ("inflight", "in flight"),
                           ("p95_s", "p95 latency (s)"),
                           ("goodput", "goodput traces")):
            values = [float(sample.get(key, 0.0)) for sample in history]
            chart = svg_sparkline(values,
                                  color=PALETTE[len(tiles) % len(PALETTE)])
            if chart:
                tiles.append(f"<figure>{chart}<figcaption>"
                             f"{escape(label)} (last {len(values)} "
                             f"samples, now {_fmt(values[-1])})"
                             "</figcaption></figure>")
        if tiles:
            body.append("<h2>Trends</h2>" + "".join(tiles))
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'/>"
            f'<meta http-equiv="refresh" content="{refresh_s:g}"/>'
            "<title>repro service dashboard</title>"
            f"<style>{_STYLE}</style></head><body>"
            + "".join(body) + "</body></html>")


def request_report_html(document: dict) -> str:
    """Self-contained HTML report for one service request.

    ``document`` is the trace document
    (:meth:`~repro.service.protocol.RequestRecord.trace_document`),
    optionally carrying the terminal ``result``: verdict banner,
    request summary, per-phase latency breakdown (queue wait + span
    phases), lifecycle timeline, the leakage verdict table, attribution
    charts, and wall/CPU flamegraphs — everything inline, nothing
    fetched.  Served by ``GET /v1/requests/<id>/report.html``.
    """
    request_id = document.get("id", "?")
    state = document.get("state", "?")
    result = document.get("result") or {}
    request = document.get("request") or {}
    error = document.get("error")
    title = f"repro request {request_id} — {state}"
    body = [f"<h1>{escape(title)}</h1>"]

    verdict = (result.get("verdict") or {})
    if verdict:
        outcome = "pass" if verdict.get("passed") else "fail"
        body.append(f'<p><span class="verdict-banner {outcome}">leakage '
                    f"budget: {outcome.upper()}</span></p>")
    else:
        outcome = "pass" if state == "done" else "fail"
        body.append(f'<p><span class="verdict-banner {outcome}">'
                    f"request {escape(state)}</span></p>")
    if error:
        body.append(f"<p><strong>{escape(str(error.get('code', '?')))}"
                    f"</strong>: {escape(str(error.get('message', '')))}"
                    "</p>")

    summary = {"id": request_id,
               "trace id": document.get("trace_id", "?"),
               "state": state,
               "client": request.get("client", "?"),
               "mode": request.get("mode", "?"),
               "masking": request.get("masking", "?"),
               "priority": request.get("priority", "?")}
    if document.get("queued_s") is not None:
        summary["queue wait (s)"] = document["queued_s"]
    if document.get("latency_s") is not None:
        summary["latency (s)"] = document["latency_s"]
    if result:
        summary.update({
            "traces": result.get("n_traces", "?"),
            "total pJ": result.get("total_pj", "?"),
            "engines": ", ".join(f"{name}×{count}" for name, count in
                                 (result.get("engines") or {}).items()),
            "compile cache hit": result.get("cache_hit", "?"),
            "trace digest": str(result.get("trace_digest", "?"))[:16],
        })
    body.append("<h2>Summary</h2>")
    body.append(_kv_table(summary))

    spans = document.get("spans") or []
    body.append(_phase_latency_section(spans, document.get("queued_s")))
    body.append(_timeline_section(document.get("timeline") or []))
    if verdict:
        body.append(leakage_section(verdict))
    if document.get("attribution"):
        body.append(attribution_section(document["attribution"]))
    if spans:
        if document.get("spans_compacted"):
            body.append('<p class="meta">span tree compacted '
                        "(aggregated by name) to bound memory.</p>")
        body.append(flamegraph_section(spans))
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'/>"
            f"<title>{escape(title)}</title>"
            f"<style>{_STYLE}</style></head><body>"
            + "".join(body) + "</body></html>")


def write_report(html: str, path: PathLike) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(html, encoding="utf-8")
    return target
