"""Flamegraph rendering of recorded span forests.

Turns the span trees the tracer collects (:mod:`repro.obs.spans` — wall
and CPU time, ``experiment > job > compile > execute`` nesting) into the
classic icicle/flamegraph visualization, in two forms:

* :func:`svg_flamegraph` — a static SVG fragment embedded into the
  self-contained HTML report (:mod:`repro.obs.report`);
* :func:`flamegraph_html` — a standalone interactive page (click to
  zoom, wall/CPU metric toggle, hover tooltips) built from the same
  aggregation, stdlib-only like the rest of the report engine.

Aggregation merges sibling spans with the same name (all ``trace[i]``
jobs of a campaign collapse into one ``job`` frame whose width is their
summed time), mirroring how ``flamegraph.pl`` folds stacks; *self* time
is a frame's own time minus its children's, so the hot leaf — compile,
execute, or the engine overhead between them — is visible at a glance.
"""

from __future__ import annotations

import html
import json
from typing import Optional, Sequence

from .report import PALETTE


class Frame:
    """One aggregated node of the flamegraph: same-name sibling spans
    merged, children aggregated recursively."""

    __slots__ = ("name", "wall_s", "cpu_s", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.count = 0
        self.children: dict[str, "Frame"] = {}

    def absorb(self, node: dict) -> None:
        self.wall_s += float(node.get("wall_s", 0.0))
        self.cpu_s += float(node.get("cpu_s", 0.0))
        self.count += 1
        for child in node.get("children", []):
            name = str(child.get("name", "?"))
            self.children.setdefault(name, Frame(name)).absorb(child)

    def value(self, metric: str) -> float:
        return self.wall_s if metric == "wall" else self.cpu_s

    def self_value(self, metric: str) -> float:
        own = self.value(metric) \
            - sum(child.value(metric) for child in self.children.values())
        return max(own, 0.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 9),
            "cpu_s": round(self.cpu_s, 9),
            "count": self.count,
            "children": [child.to_dict()
                         for child in self.children.values()],
        }


def aggregate_spans(spans: Sequence[dict]) -> Frame:
    """Fold a span forest into one aggregated frame tree.

    The returned synthetic ``all`` root spans the whole forest; its
    time is the sum of the root spans' (the idle gaps between top-level
    spans are not attributed anywhere, same as folded-stack tools).
    """
    root = Frame("all")
    for node in spans:
        name = str(node.get("name", "?"))
        root.children.setdefault(name, Frame(name)).absorb(node)
    root.wall_s = sum(child.wall_s for child in root.children.values())
    root.cpu_s = sum(child.cpu_s for child in root.children.values())
    root.count = sum(child.count for child in root.children.values())
    return root


def _color(name: str) -> str:
    return PALETTE[sum(name.encode()) % len(PALETTE)]


def _layout(frame: Frame, metric: str, depth: int, x: float, scale: float,
            rows: list[dict], min_px: float = 0.5) -> None:
    width = frame.value(metric) * scale
    if width < min_px:
        return
    rows.append({"frame": frame, "depth": depth, "x": x, "width": width})
    offset = x
    for child in frame.children.values():
        _layout(child, metric, depth + 1, offset, scale, rows, min_px)
        offset += child.value(metric) * scale


def svg_flamegraph(spans: Sequence[dict], metric: str = "wall",
                   width: int = 880, row_height: int = 18,
                   title: Optional[str] = None) -> str:
    """Static SVG icicle of the span forest (root on top).

    Frames narrower than half a pixel are elided — at report scale they
    carry no signal and only bloat the document.
    """
    root = aggregate_spans(spans)
    total = root.value(metric)
    if total <= 0 or not root.children:
        return ("<svg xmlns='http://www.w3.org/2000/svg' width='880' "
                "height='24'><text x='4' y='16' font-size='12' "
                "fill='#666'>no span data</text></svg>")
    scale = width / total
    rows: list[dict] = []
    _layout(root, metric, 0, 0.0, scale, rows)
    depth_limit = max(row["depth"] for row in rows) + 1
    height = depth_limit * row_height + (22 if title else 2)
    top = 20 if title else 0
    parts = [f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
             f"height='{height}' font-family='monospace' font-size='11'>"]
    if title:
        parts.append(f"<text x='0' y='13' font-size='12' fill='#333'>"
                     f"{html.escape(title)}</text>")
    for row in rows:
        frame = row["frame"]
        y = top + row["depth"] * row_height
        w = max(row["width"] - 0.5, 0.5)
        seconds = frame.value(metric)
        share = 100.0 * seconds / total
        label = (f"{frame.name} — {seconds:.3f}s {metric} "
                 f"({share:.1f}%), {frame.count}×")
        parts.append(
            f"<g><title>{html.escape(label)}</title>"
            f"<rect x='{row['x']:.2f}' y='{y}' width='{w:.2f}' "
            f"height='{row_height - 1}' fill='{_color(frame.name)}' "
            f"rx='1'/>")
        if row["width"] > 40:
            text = html.escape(frame.name)
            parts.append(f"<text x='{row['x'] + 3:.2f}' y='{y + 12}' "
                         f"fill='#fff'>{text}</text>")
        parts.append("</g>")
    parts.append("</svg>")
    return "".join(parts)


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
 body {{ font-family: monospace; margin: 16px; background: #fafafa; }}
 h1 {{ font-size: 16px; }}
 #meta {{ color: #666; font-size: 12px; margin-bottom: 8px; }}
 #controls {{ margin: 8px 0; }}
 #controls button {{ font-family: monospace; margin-right: 6px; }}
 #graph {{ position: relative; width: 100%; }}
 .frame {{ position: absolute; height: 17px; overflow: hidden;
          white-space: nowrap; color: #fff; font-size: 11px;
          line-height: 17px; padding-left: 3px; border-radius: 2px;
          box-sizing: border-box; cursor: pointer; }}
 .frame:hover {{ outline: 1.5px solid #333; }}
 #detail {{ margin-top: 10px; color: #333; font-size: 12px;
           min-height: 1.2em; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div id="meta">{meta}</div>
<div id="controls">
 <button onclick="setMetric('wall_s')">wall</button>
 <button onclick="setMetric('cpu_s')">cpu</button>
 <button onclick="zoomTo(null)">reset zoom</button>
</div>
<div id="graph"></div>
<div id="detail">click a frame to zoom; hover for timing</div>
<script>
const ROOT = {frames};
const PALETTE = {palette};
let metric = "wall_s";
let focus = null;
function color(name) {{
  let sum = 0;
  for (const ch of name) sum += ch.codePointAt(0);
  return PALETTE[sum % PALETTE.length];
}}
function value(frame) {{ return frame[metric]; }}
function setMetric(m) {{ metric = m; render(); }}
function zoomTo(frame) {{ focus = frame; render(); }}
function render() {{
  const graph = document.getElementById("graph");
  graph.textContent = "";
  const root = focus || ROOT;
  const total = value(root);
  if (total <= 0) {{ graph.textContent = "no span data"; return; }}
  const width = graph.clientWidth || 880;
  const rowH = 18;
  let maxDepth = 0;
  function walk(frame, depth, x, scale) {{
    const w = value(frame) * scale;
    if (w < 0.5) return;
    maxDepth = Math.max(maxDepth, depth);
    const div = document.createElement("div");
    div.className = "frame";
    div.style.left = x + "px";
    div.style.top = (depth * rowH) + "px";
    div.style.width = Math.max(w - 1, 1) + "px";
    div.style.background = color(frame.name);
    div.textContent = w > 40 ? frame.name : "";
    const pct = (100 * value(frame) / total).toFixed(1);
    const secs = value(frame).toFixed(4);
    div.title = frame.name + " — " + secs + "s (" + pct + "%), " +
      frame.count + "x";
    div.onclick = () => zoomTo(frame);
    div.onmouseenter = () => {{
      document.getElementById("detail").textContent = div.title;
    }};
    graph.appendChild(div);
    let offset = x;
    for (const child of frame.children) {{
      walk(child, depth + 1, offset, scale);
      offset += value(child) * scale;
    }}
  }}
  walk(root, 0, 0, width / total);
  graph.style.height = ((maxDepth + 1) * rowH + 4) + "px";
}}
window.addEventListener("resize", render);
render();
</script>
</body>
</html>
"""


def flamegraph_html(spans: Sequence[dict], title: str = "Span flamegraph",
                    meta: Optional[dict] = None) -> str:
    """Standalone interactive flamegraph page for a span forest.

    Self-contained: the aggregated frames are embedded as JSON and the
    renderer is a small inline script — no external assets, so the file
    can ride along as a CI artifact and open anywhere.
    """
    root = aggregate_spans(spans)
    meta_text = " · ".join(f"{key}={value}"
                           for key, value in sorted((meta or {}).items()))
    return _HTML_TEMPLATE.format(
        title=html.escape(title),
        meta=html.escape(meta_text) or "&nbsp;",
        frames=json.dumps(root.to_dict()),
        palette=json.dumps(list(PALETTE)),
    )
