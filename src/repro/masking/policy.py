"""Masking policies: which instructions run in secure (dual-rail) mode.

The paper's Section 4.3 compares four schemes on DES:

* ``NONE``      — unmodified program (46.4 µJ in the paper);
* ``SELECTIVE`` — the paper's contribution: compiler-annotated + forward
  sliced secure instructions (52.6 µJ);
* ``ALL_LOADS_STORES`` — the naive approach that converts *every* load and
  store into the secure version, with no compiler analysis (63.6 µJ);
* ``ALL``       — whole-program dual-rail, "the one used in current
  dual-rail solutions" (83.5 µJ, almost twice the original).

``NONE`` and ``SELECTIVE`` are produced by the compiler; the two naive
policies are assembly-level rewrites of the unmasked program (no analysis is
involved, by construction).
"""

from __future__ import annotations

import enum

from .. import obs
from ..isa.instructions import Instruction
from ..isa.program import Program


class MaskingPolicy(enum.Enum):
    NONE = "none"
    SELECTIVE = "selective"
    #: Ablation: annotation without forward slicing.
    ANNOTATE_ONLY = "annotate-only"
    ALL_LOADS_STORES = "all-loads-stores"
    ALL = "all"

    @property
    def compiler_mode(self) -> str | None:
        """The compile_source masking argument, if compiler-driven."""
        if self is MaskingPolicy.NONE:
            return "none"
        if self is MaskingPolicy.SELECTIVE:
            return "selective"
        if self is MaskingPolicy.ANNOTATE_ONLY:
            return "annotate-only"
        return None


def secure_all_loads_stores(program: Program) -> Program:
    """Naive dual-rail data path: every memory instruction becomes secure."""
    def rewrite(ins: Instruction) -> Instruction:
        if ins.spec.is_load or ins.spec.is_store:
            return ins.with_secure(True)
        return ins

    return program.replace_text(rewrite(ins) for ins in program.text)


def secure_all(program: Program) -> Program:
    """Whole-program dual-rail: every instruction becomes secure."""
    return program.replace_text(ins.with_secure(True) for ins in program.text)


def apply_policy(program: Program, policy: MaskingPolicy) -> Program:
    """Apply an assembly-level policy to an *unmasked* program.

    Compiler-driven policies (NONE/SELECTIVE/ANNOTATE_ONLY) must be selected
    at compile time; passing them here returns the program unchanged
    (for NONE) or raises (for the others).
    """
    if policy is MaskingPolicy.NONE:
        return program
    if policy is MaskingPolicy.ALL_LOADS_STORES:
        rewritten = secure_all_loads_stores(program)
    elif policy is MaskingPolicy.ALL:
        rewritten = secure_all(program)
    else:
        raise ValueError(f"policy {policy} is compiler-driven; "
                         "use compile_source(masking=...)")
    if obs.enabled():
        secured = sum(1 for before, after
                      in zip(program.text, rewritten.text)
                      if after.secure and not before.secure)
        obs.counter("policy_secured_instructions",
                    "static instructions a masking policy rewrote "
                    "to secure mode") \
            .inc(secured, policy=policy.value)
    return rewritten
