"""Dynamic information-flow audit of compiled programs.

The compiler's forward slicing is *static*; this module verifies it
*dynamically*: it runs the program on the functional interpreter while
tracking a shadow taint bit per register and per memory word (seeded from
the secret symbols), and records a violation whenever an instruction
touches tainted data **without** its secure bit set:

* an ALU/compare/shift instruction reading a tainted register;
* a load from a tainted word or through a tainted address (index leak);
* a store of a tainted value (or through a tainted address);
* a branch/jump whose operands are tainted (control flow — unmaskable).

Because the audit is dynamic it is *more precise* than the
flow-insensitive static slice (overwriting a register or word with clean
data clears its taint), so "zero violations" is a strong statement: on
this input, every instruction that handled secret-derived data ran in
secure mode.  Declassified regions (``__insecure``) are insecure by
design and show up as violations — audit programs built without their
declassified output phase (e.g. ``include_fp=False``) for a clean check,
or inspect ``AuditReport.violations`` for location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.instructions import Instruction
from ..isa.program import Program
from ..machine.interpreter import Interpreter
from ..machine.pipeline import MARKER_ADDR


@dataclass
class Violation:
    """One insecure touch of tainted data."""

    pc: int
    instruction: str
    kind: str        # 'data' | 'load-address' | 'store-address' | 'control'

    def __str__(self) -> str:
        return f"0x{self.pc:08x}: {self.instruction}  [{self.kind}]"


@dataclass
class AuditReport:
    violations: list[Violation] = field(default_factory=list)
    instructions_executed: int = 0
    tainted_instructions: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        if self.clean:
            return (f"audit clean: {self.tainted_instructions} of "
                    f"{self.instructions_executed} executed instructions "
                    "touched secret data, all in secure mode")
        head = "\n".join(f"  {v}" for v in self.violations[:10])
        more = "" if len(self.violations) <= 10 \
            else f"\n  ... and {len(self.violations) - 10} more"
        return (f"AUDIT FAILED: {len(self.violations)} insecure touches of "
                f"secret data:\n{head}{more}")


class TaintAuditor:
    """Drives the functional interpreter with shadow taint state."""

    def __init__(self, program: Program,
                 secret_symbols: dict[str, int],
                 inputs: Optional[dict[str, list[int]]] = None):
        """``secret_symbols`` maps symbol name -> word count to taint."""
        self.program = program
        self.interpreter = Interpreter(program)
        if inputs:
            for symbol, words in inputs.items():
                self.interpreter.memory.write_words(
                    program.address_of(symbol), words)
        self.reg_taint = [False] * 32
        self.mem_taint: set[int] = set()
        for symbol, count in secret_symbols.items():
            base = program.address_of(symbol)
            for offset in range(count):
                self.mem_taint.add((base + 4 * offset) >> 2)
        self.report = AuditReport()

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 50_000_000) -> AuditReport:
        interp = self.interpreter
        while not interp.halted:
            if interp.executed >= max_instructions:
                raise RuntimeError("audit exceeded max_instructions")
            index = (interp.pc - self.program.text_base) >> 2
            ins = self.program.text[index]
            self._audit_before(ins)
            interp.step()
            self._update_after(ins)
        self.report.instructions_executed = interp.executed
        return self.report

    # ------------------------------------------------------------------

    def _sources_tainted(self, ins: Instruction) -> bool:
        return any(self.reg_taint[r] for r in ins.sources if r)

    def _address_of(self, ins: Instruction) -> int:
        base = self.interpreter.regs.read(ins.rs)
        return (base + (ins.imm or 0)) & 0xFFFF_FFFF

    def _audit_before(self, ins: Instruction) -> None:
        spec = ins.spec
        touched = False
        kind = "data"
        if spec.is_load:
            address = self._address_of(ins)
            if self.reg_taint[ins.rs]:
                touched, kind = True, "load-address"
            elif (address >> 2) in self.mem_taint:
                touched = True
        elif spec.is_store:
            if self.reg_taint[ins.rs]:
                touched, kind = True, "store-address"
            elif self.reg_taint[ins.rt]:
                touched = True
        elif spec.is_branch or spec.is_jump:
            if self._sources_tainted(ins):
                touched, kind = True, "control"
        else:
            touched = self._sources_tainted(ins)
        if touched:
            self.report.tainted_instructions += 1
            # Control flow cannot be masked even by the secure bit.
            if kind == "control" or not ins.secure:
                self.report.violations.append(Violation(
                    pc=self.interpreter.pc, instruction=str(ins), kind=kind))

    def _update_after(self, ins: Instruction) -> None:
        spec = ins.spec
        if spec.is_load:
            address = self._address_of(ins)
            tainted = self.reg_taint[ins.rs] \
                or (address >> 2) in self.mem_taint
            if ins.rt:
                self.reg_taint[ins.rt] = tainted
            return
        if spec.is_store:
            address = self._address_of(ins)
            if address == MARKER_ADDR:
                return
            word = address >> 2
            if self.reg_taint[ins.rt] or self.reg_taint[ins.rs]:
                self.mem_taint.add(word)
            else:
                self.mem_taint.discard(word)
            return
        dest = ins.dest
        if dest:
            if ins.op in ("jal", "jalr"):
                self.reg_taint[dest] = False  # link address is public
            else:
                self.reg_taint[dest] = self._sources_tainted(ins)


def audit_masking(program: Program, secret_symbols: dict[str, int],
                  inputs: Optional[dict[str, list[int]]] = None,
                  max_instructions: int = 50_000_000) -> AuditReport:
    """Run the dynamic taint audit on one execution of ``program``."""
    from .. import obs

    auditor = TaintAuditor(program, secret_symbols, inputs)
    with obs.span("audit", secrets=",".join(sorted(secret_symbols))):
        report = auditor.run(max_instructions=max_instructions)
    if obs.enabled():
        registry = obs.registry()
        registry.counter("audit_instructions_executed",
                         "instructions the taint audit stepped through") \
            .inc(report.instructions_executed)
        registry.counter("audit_tainted_instructions",
                         "executed instructions that touched secret data") \
            .inc(report.tainted_instructions)
        violations = registry.counter(
            "audit_violations", "insecure touches of tainted data by kind")
        for violation in report.violations:
            violations.inc(kind=violation.kind)
    return report
