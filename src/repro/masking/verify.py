"""Empirical masking verification for compiled programs.

A reusable check of the property every masked program must satisfy: over a
chosen window, the per-cycle energy trace is *identical* for every value
of the secret inputs (public inputs held fixed).  This is the strongest
form of the paper's claim — not merely "no exploitable difference" but
bit-exact trace equality — and it is what the DES/AES masking tests and
the PIN example assert.

Typical use::

    report = verify_masking(
        compiled.program,
        secret_inputs=[{"key": key_words(k)} for k in candidate_keys],
        public_inputs={"plaintext": plaintext_words(pt)},
        window_markers=(M_KEYPERM_START, M_FP_START))
    assert report.flat, report.describe()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..isa.program import Program


@dataclass
class MaskingReport:
    """Outcome of one verification run."""

    flat: bool
    max_abs_diff_pj: float
    nonzero_cycles: int
    window: tuple[int, int]
    assignments_tested: int
    #: Index (into the secret_inputs list) of the first leaking pair, or
    #: None when flat.
    first_leaking_pair: Optional[tuple[int, int]] = None

    def describe(self) -> str:
        if self.flat:
            return (f"masking holds: {self.assignments_tested} secret "
                    f"assignments, window {self.window}, max |Δ| = 0 pJ")
        return (f"MASKING VIOLATION: assignments "
                f"{self.first_leaking_pair} differ by up to "
                f"{self.max_abs_diff_pj:.3f} pJ over {self.nonzero_cycles} "
                f"cycles in window {self.window}")


def verify_masking(program: Program,
                   secret_inputs: list[dict[str, list[int]]],
                   public_inputs: Optional[dict[str, list[int]]] = None,
                   window_markers: Optional[tuple[int, int]] = None,
                   params: EnergyParams = DEFAULT_PARAMS,
                   max_cycles: int = 50_000_000) -> MaskingReport:
    """Run the program under each secret assignment and compare traces.

    ``window_markers`` selects the region between two program markers
    (first occurrence of each); without it the whole trace is compared —
    which will normally *fail* for programs that read public inputs
    insecurely (by design), so pass the markers that bracket the protected
    phase.
    """
    from ..harness.runner import run_with_trace

    if len(secret_inputs) < 2:
        raise ValueError("need at least two secret assignments to compare")
    traces: list[np.ndarray] = []
    window = (0, 0)
    for secrets in secret_inputs:
        inputs = dict(public_inputs or {})
        inputs.update(secrets)
        result = run_with_trace(program, inputs=inputs, params=params,
                                max_cycles=max_cycles)
        energy = result.trace.energy
        if window_markers is not None:
            start = result.trace.marker_cycles(window_markers[0])[0]
            end = result.trace.marker_cycles(window_markers[1])[0]
        else:
            start, end = 0, energy.shape[0]
        window = (start, end)
        traces.append(energy[start:end])
    lengths = {trace.shape[0] for trace in traces}
    if len(lengths) != 1:
        raise RuntimeError(
            "traces are not cycle-aligned across secret assignments; the "
            "program has secret-dependent control flow")

    reference = traces[0]
    worst = 0.0
    worst_pair: Optional[tuple[int, int]] = None
    worst_nonzero = 0
    for index, trace in enumerate(traces[1:], start=1):
        delta = np.abs(trace - reference)
        peak = float(delta.max()) if delta.size else 0.0
        if peak > worst:
            worst = peak
            worst_pair = (0, index)
            worst_nonzero = int(np.count_nonzero(delta))
    return MaskingReport(flat=worst == 0.0, max_abs_diff_pj=worst,
                         nonzero_cycles=worst_nonzero, window=window,
                         assignments_tested=len(secret_inputs),
                         first_leaking_pair=worst_pair)


def random_secret_assignments(symbol: str, words: int, count: int,
                              max_value: int = 1,
                              seed: int = 7) -> list[dict[str, list[int]]]:
    """Random assignments for a secret array symbol (bit arrays by
    default; pass ``max_value=255`` for byte arrays, etc.)."""
    rng = np.random.default_rng(seed)
    return [{symbol: rng.integers(0, max_value + 1,
                                  size=words).tolist()}
            for _ in range(count)]
