"""Masking policies and program rewriters."""

from .audit import AuditReport, TaintAuditor, Violation, audit_masking
from .policy import (MaskingPolicy, apply_policy, secure_all,
                     secure_all_loads_stores)
from .verify import (MaskingReport, random_secret_assignments,
                     verify_masking)

__all__ = ["AuditReport", "MaskingPolicy", "MaskingReport",
           "TaintAuditor", "Violation", "apply_policy", "audit_masking",
           "random_secret_assignments", "secure_all",
           "secure_all_loads_stores", "verify_masking"]
