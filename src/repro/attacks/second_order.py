"""Second-order DPA: combining two trace points before the statistic.

Randomized (boolean-split) masking schemes defeat first-order DPA because
each share is independent of the secret — but the *joint* statistics of
two points still leak, and second-order DPA (Messerges) recovers the key
by combining pairs of trace samples (here: the centered product) before
the difference-of-means test.

The paper's dual-rail masking is stronger against this class of attack
than randomized masking: the secured cycles are *constants* rather than
randomized shares, so every combining function of them is also constant
and second-order analysis finds nothing either.  The tests demonstrate
both halves: the implementation breaks a synthetic share-based mask that
first-order DPA cannot touch, and returns zero signal against the
dual-rail-masked simulator traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .dpa import DpaResult, GuessScore, TraceSet
from .selection import predict_sbox_output_bit, true_round1_subkey_chunk


def centered_product(traces: np.ndarray,
                     window: Optional[tuple[int, int]] = None) -> np.ndarray:
    """Second-order preprocessing: pairwise centered products.

    For each trace, every ordered pair (i, j), i < j, of cycles in the
    window is combined as (t_i - mean_i) * (t_j - mean_j).  Output shape is
    (n_traces, n_pairs).  Quadratic in the window size — callers window
    the traces to the region of interest first (as a real attacker would).
    """
    traces = np.asarray(traces, dtype=np.float64)
    if window is not None:
        traces = traces[:, window[0]:window[1]]
    n_cycles = traces.shape[1]
    if n_cycles > 512:
        raise ValueError(
            f"window too wide for pairwise combining ({n_cycles} cycles); "
            "narrow the window (quadratic blowup)")
    centered = traces - traces.mean(axis=0)
    i_index, j_index = np.triu_indices(n_cycles, k=1)
    return centered[:, i_index] * centered[:, j_index]


def second_order_dpa(trace_set: TraceSet, box: int, target_bit: int = 0,
                     key: Optional[int] = None,
                     window: Optional[tuple[int, int]] = None,
                     guesses: Optional[list[int]] = None) -> DpaResult:
    """Difference-of-means DPA over centered-product combined traces."""
    if guesses is None:
        guesses = list(range(64))
    combined = centered_product(trace_set.traces, window)
    scores = []
    for guess in guesses:
        partition = np.fromiter(
            (predict_sbox_output_bit(pt, guess, box, target_bit)
             for pt in trace_set.plaintexts),
            dtype=np.int8, count=trace_set.n)
        ones = partition == 1
        zeros = ~ones
        if not ones.any() or not zeros.any():
            scores.append(GuessScore(guess=guess, peak=0.0, peak_cycle=0))
            continue
        delta = np.abs(combined[ones].mean(axis=0)
                       - combined[zeros].mean(axis=0))
        peak_index = int(delta.argmax()) if delta.size else 0
        scores.append(GuessScore(guess=guess,
                                 peak=float(delta.max()) if delta.size
                                 else 0.0,
                                 peak_cycle=peak_index))
    scores.sort(key=lambda s: s.peak, reverse=True)
    true_subkey = true_round1_subkey_chunk(key, box) if key is not None \
        else None
    return DpaResult(box=box, target_bit=target_bit, scores=scores,
                     true_subkey=true_subkey)
