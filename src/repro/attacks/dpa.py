"""Differential power analysis against the simulated DES implementation.

Implements the Kocher/Goubin attack the paper defends against (its Section
1 describes exactly this procedure): collect N traces with random known
plaintexts and a fixed secret key, guess a 6-bit round-1 subkey chunk,
partition the traces by a predicted intermediate bit, and look for a
difference-of-means peak.  The correct guess produces a peak because the
predicted bit matches the device's real data; wrong guesses decorrelate.

Against the masked program the secured region is energy-constant, so no
partition produces a peak and the correct subkey is not distinguished.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..isa.program import Program
from ..obs.streaming import DisclosureCurve, MeanAccumulator
from .selection import predict_sbox_output_bit, true_round1_subkey_chunk
from .stats import difference_of_means


@dataclass
class TraceSet:
    """Traces collected from the device under attack."""

    plaintexts: list[int]
    traces: np.ndarray            # (n, cycles)
    #: Cycle window the analysis runs over (attacker-chosen via SPA).
    window: tuple[int, int]

    @property
    def n(self) -> int:
        return len(self.plaintexts)


@dataclass
class GuessScore:
    guess: int
    peak: float
    peak_cycle: int


@dataclass
class DpaResult:
    box: int
    target_bit: int
    scores: list[GuessScore]       # sorted by peak, descending
    true_subkey: Optional[int] = None

    @property
    def best_guess(self) -> int:
        return self.scores[0].guess

    @property
    def rank_of_true(self) -> Optional[int]:
        if self.true_subkey is None:
            return None
        for rank, score in enumerate(self.scores):
            if score.guess == self.true_subkey:
                return rank
        return None  # pragma: no cover

    @property
    def margin(self) -> float:
        """Peak of the best guess over the best *other* guess (>1 means the
        winner is distinguished; ~1 means the attack found nothing)."""
        best = self.scores[0].peak
        runner_up = self.scores[1].peak if len(self.scores) > 1 else 0.0
        if runner_up <= 0:
            return float("inf") if best > 0 else 1.0
        return best / runner_up

    def succeeded(self) -> bool:
        """True if the true subkey ranks first."""
        return self.rank_of_true == 0


def collect_traces(program: Program, key: int, plaintexts: list[int],
                   params: EnergyParams = DEFAULT_PARAMS,
                   window: Optional[tuple[int, int]] = None,
                   progress: Optional[Callable[[int, int], None]] = None,
                   noise_sigma: float = 0.0, jobs: int = 1,
                   retries: int = 0, job_timeout: Optional[float] = None,
                   checkpoint: Optional[str] = None,
                   engine: Optional[str] = None) -> TraceSet:
    """Run the device once per plaintext and stack the energy traces.

    ``window`` restricts the stored cycles (an attacker applies SPA first to
    find the round-1 region); default keeps the whole trace.
    ``noise_sigma`` adds the randomized-power countermeasure (fresh noise
    per acquisition, as a real device would produce).
    ``jobs`` fans the acquisitions across worker processes; each trace
    keeps its serial noise seed (``index + 1``), so the stacked matrix is
    bit-identical to a ``jobs=1`` collection.

    Long collections can be made fault-tolerant: ``retries`` re-runs a
    crashed/timed-out acquisition (retried traces are bit-identical —
    the noise seed is per-job), ``job_timeout`` bounds each acquisition
    in wall-clock seconds, and ``checkpoint`` journals completed traces
    so an interrupted collection resumes where it stopped.  DPA needs
    every trace, so a job that still fails after its retry budget raises
    :class:`~repro.harness.resilience.BatchError`.

    ``engine`` picks the execution engine per acquisition (default: the
    ambient ``$REPRO_ENGINE``, else the schedule-replay fast path, which
    is bit-identical).  Under the fast engine the program's cycle schedule
    is recorded **once in the parent** before the batch is dispatched, so
    pool workers inherit it (fork) or load it from the shared disk cache
    instead of each re-recording it.
    """
    # Imported here to avoid a package-level cycle (harness.experiments
    # imports this module).
    from ..harness.engine import SimJob, run_jobs
    from ..harness.resilience import require_results
    from ..machine import fastpath

    if fastpath.resolve_engine(engine) in ("fast", "vector"):
        fastpath.ensure_schedule(program)
    batch = [SimJob(program=program, des_pair=(key, plaintext),
                    params=params, noise_sigma=noise_sigma,
                    noise_seed=index + 1, label=f"trace[{index}]",
                    engine=engine)
             for index, plaintext in enumerate(plaintexts)]
    results = run_jobs(batch, jobs=jobs, progress=progress,
                       failure_policy="retry" if retries else "raise",
                       retries=retries, job_timeout=job_timeout,
                       checkpoint=checkpoint)
    rows = []
    for result in require_results(results):
        energy = result.energy
        if window is not None:
            energy = energy[window[0]:window[1]]
        rows.append(energy)
    lengths = {row.shape[0] for row in rows}
    if len(lengths) != 1:
        raise RuntimeError("traces are not cycle-aligned; DPA needs "
                           "identical control flow across plaintexts")
    traces = np.vstack(rows)
    if window is None:
        window = (0, traces.shape[1])
    return TraceSet(plaintexts=list(plaintexts), traces=traces, window=window)


def dpa_attack(trace_set: TraceSet, box: int, target_bit: int = 0,
               key: Optional[int] = None,
               guesses: Optional[list[int]] = None) -> DpaResult:
    """Rank all subkey guesses for one S-box by difference-of-means peak."""
    if guesses is None:
        guesses = list(range(64))
    scores = []
    for guess in guesses:
        partition = np.fromiter(
            (predict_sbox_output_bit(pt, guess, box, target_bit)
             for pt in trace_set.plaintexts),
            dtype=np.int8, count=trace_set.n)
        delta = difference_of_means(trace_set.traces, partition)
        abs_delta = np.abs(delta)
        peak_cycle = int(abs_delta.argmax()) if abs_delta.size else 0
        scores.append(GuessScore(guess=guess,
                                 peak=float(abs_delta.max()) if abs_delta.size
                                 else 0.0,
                                 peak_cycle=peak_cycle))
    scores.sort(key=lambda s: s.peak, reverse=True)
    true_subkey = true_round1_subkey_chunk(key, box) if key is not None \
        else None
    return DpaResult(box=box, target_bit=target_bit, scores=scores,
                     true_subkey=true_subkey)


def dpa_attack_multibit(trace_set: TraceSet, box: int,
                        key: Optional[int] = None,
                        guesses: Optional[list[int]] = None) -> DpaResult:
    """Multi-bit DPA: sum the per-bit difference-of-means peaks over all
    four S-box output bits.  Sharper than single-bit DPA at equal trace
    counts (Messerges-style d-of-m generalization)."""
    if guesses is None:
        guesses = list(range(64))
    scores = []
    for guess in guesses:
        total = 0.0
        peak_cycle = 0
        best_bit_peak = -1.0
        for bit in range(4):
            partition = np.fromiter(
                (predict_sbox_output_bit(pt, guess, box, bit)
                 for pt in trace_set.plaintexts),
                dtype=np.int8, count=trace_set.n)
            delta = np.abs(difference_of_means(trace_set.traces, partition))
            if delta.size:
                peak = float(delta.max())
                total += peak
                if peak > best_bit_peak:
                    best_bit_peak = peak
                    peak_cycle = int(delta.argmax())
        scores.append(GuessScore(guess=guess, peak=total,
                                 peak_cycle=peak_cycle))
    scores.sort(key=lambda s: s.peak, reverse=True)
    true_subkey = true_round1_subkey_chunk(key, box) if key is not None \
        else None
    return DpaResult(box=box, target_bit=-1, scores=scores,
                     true_subkey=true_subkey)


class DpaAccumulator:
    """Streaming difference-of-means DPA: O(guesses × cycles) memory.

    Holds one pair of :class:`~repro.obs.streaming.MeanAccumulator` per
    subkey guess (partition-0 / partition-1 group means); each incoming
    ``(plaintext, energy)`` updates every guess's predicted partition, so
    a campaign of any trace count ranks all 64 guesses without ever
    stacking the trace matrix.  ``merge`` is associative, so sharded
    accumulators combine to the single-pass ranking.  :meth:`result`
    yields the same :class:`DpaResult` semantics as :func:`dpa_attack`
    (empty partitions score zero).
    """

    def __init__(self, box: int, target_bit: int = 0,
                 key: Optional[int] = None,
                 guesses: Optional[list[int]] = None):
        self.box = box
        self.target_bit = target_bit
        self.key = key
        self.guesses = list(guesses) if guesses is not None \
            else list(range(64))
        self.groups = {guess: (MeanAccumulator(), MeanAccumulator())
                       for guess in self.guesses}
        self.count = 0

    def update(self, plaintext: int, energy: np.ndarray) -> None:
        for guess in self.guesses:
            bit = predict_sbox_output_bit(plaintext, guess, self.box,
                                          self.target_bit)
            self.groups[guess][bit].update(energy)
        self.count += 1

    def merge(self, other: "DpaAccumulator") -> None:
        if (other.box != self.box or other.target_bit != self.target_bit
                or other.guesses != self.guesses):
            raise ValueError("cannot merge accumulators over different "
                             "attack hypotheses")
        for guess in self.guesses:
            self.groups[guess][0].merge(other.groups[guess][0])
            self.groups[guess][1].merge(other.groups[guess][1])
        self.count += other.count

    def result(self) -> DpaResult:
        scores = []
        for guess in self.guesses:
            zeros, ones = self.groups[guess]
            if zeros.mean is None or ones.mean is None:
                scores.append(GuessScore(guess=guess, peak=0.0,
                                         peak_cycle=0))
                continue
            delta = np.abs(ones.mean - zeros.mean)
            peak_cycle = int(delta.argmax()) if delta.size else 0
            scores.append(GuessScore(
                guess=guess,
                peak=float(delta.max()) if delta.size else 0.0,
                peak_cycle=peak_cycle))
        scores.sort(key=lambda s: s.peak, reverse=True)
        true_subkey = true_round1_subkey_chunk(self.key, self.box) \
            if self.key is not None else None
        return DpaResult(box=self.box, target_bit=self.target_bit,
                         scores=scores, true_subkey=true_subkey)


@dataclass
class StreamingDpaResult:
    """Outcome of a streaming DPA campaign: the final ranking plus the
    rank-of-true-subkey disclosure curve (``mode="rank"``: disclosed when
    the true subkey ranks first)."""

    result: DpaResult
    curve: DisclosureCurve
    traces_consumed: int

    @property
    def disclosure_traces(self) -> Optional[int]:
        return self.curve.disclosure_traces


def streaming_dpa_attack(program: Program, key: int, plaintexts: list[int],
                         box: int, target_bit: int = 0,
                         params: EnergyParams = DEFAULT_PARAMS,
                         window: Optional[tuple[int, int]] = None,
                         noise_sigma: float = 0.0, jobs: int = 1,
                         chunk_size: int = 16,
                         checkpoint_every: Optional[int] = None,
                         ) -> StreamingDpaResult:
    """Acquire-and-attack in one bounded-memory pass.

    The same acquisitions as :func:`collect_traces` (noise seed
    ``index + 1`` per trace) streamed through
    :func:`repro.harness.engine.run_stream` into a
    :class:`DpaAccumulator`; the trace matrix is never materialized.  A
    rank-based :class:`~repro.obs.streaming.DisclosureCurve` samples the
    true subkey's rank every ``checkpoint_every`` traces (default: once
    per chunk), and heartbeats carry a ``rank_of_true`` watermark when a
    progress reporter is active.
    """
    from ..harness.engine import SimJob, run_stream
    from ..machine import fastpath
    from ..obs import progress as obs_progress

    if fastpath.resolve_engine(None) in ("fast", "vector"):
        fastpath.ensure_schedule(program)
    if checkpoint_every is None:
        checkpoint_every = chunk_size
    batch = [SimJob(program=program, des_pair=(key, plaintext),
                    params=params, noise_sigma=noise_sigma,
                    noise_seed=index + 1, label=f"trace[{index}]")
             for index, plaintext in enumerate(plaintexts)]
    accumulator = DpaAccumulator(box=box, target_bit=target_bit, key=key)
    curve = DisclosureCurve(threshold=0, mode="rank")

    def consume(index: int, result) -> None:
        energy = result.energy
        if window is not None:
            energy = energy[window[0]:window[1]]
        accumulator.update(plaintexts[index], energy)
        done = index + 1
        at_checkpoint = done % checkpoint_every == 0
        if at_checkpoint or done == len(batch):
            rank = accumulator.result().rank_of_true
            if at_checkpoint:
                curve.record(done, float(rank))
            reporter = obs_progress.current()
            if reporter is not None:
                reporter.set_watermark("rank_of_true", float(rank))

    consumed = run_stream(batch, consume, jobs=jobs, chunk_size=chunk_size)
    return StreamingDpaResult(result=accumulator.result(), curve=curve,
                              traces_consumed=consumed)


def random_plaintexts(count: int, seed: int = 2003) -> list[int]:
    """Deterministic random 64-bit plaintexts for reproducible attacks."""
    rng = np.random.default_rng(seed)
    high = rng.integers(0, 1 << 32, size=count, dtype=np.uint64)
    low = rng.integers(0, 1 << 32, size=count, dtype=np.uint64)
    return [int((h << np.uint64(32)) | l) for h, l in zip(high, low)]
