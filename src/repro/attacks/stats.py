"""Statistical primitives for power-analysis attacks.

All functions operate on trace matrices: numpy arrays of shape
``(n_traces, n_cycles)`` with per-cycle energy in pJ.  The partition
statistics also accept ``streaming=True``, which routes the same inputs
row-by-row through the bounded-memory accumulators of
:mod:`repro.obs.streaming` — numerically equal to the vectorized batch
path (same estimator, float summation order aside) and the equivalence
surface the streaming-campaign tests pin down.
"""

from __future__ import annotations

import numpy as np


def difference_of_means(traces: np.ndarray, partition: np.ndarray,
                        streaming: bool = False) -> np.ndarray:
    """Kocher's DPA statistic: mean(group 1) - mean(group 0) per cycle.

    ``partition`` is a 0/1 vector of length n_traces (the predicted value of
    the selection function for each trace).  Returns a vector of per-cycle
    mean differences; an all-zero vector if either group is empty.
    """
    traces = np.asarray(traces, dtype=np.float64)
    partition = np.asarray(partition)
    if partition.shape[0] != traces.shape[0]:
        raise ValueError("partition length must equal number of traces")
    ones = partition == 1
    zeros = ~ones
    if not ones.any() or not zeros.any():
        return np.zeros(traces.shape[1])
    if streaming:
        from ..obs.streaming import WelchTAccumulator, stream_rows

        accumulator = stream_rows(traces, WelchTAccumulator(),
                                  groups=ones.astype(int))
        return accumulator.mean_difference()
    return traces[ones].mean(axis=0) - traces[zeros].mean(axis=0)


def max_bias(traces: np.ndarray, partition: np.ndarray) -> float:
    """Peak absolute difference-of-means over all cycles."""
    delta = difference_of_means(traces, partition)
    return float(np.abs(delta).max()) if delta.size else 0.0


def welch_t_statistic(traces: np.ndarray, partition: np.ndarray,
                      streaming: bool = False) -> np.ndarray:
    """Per-cycle Welch t-statistic between the two partitions.

    A standard leakage-assessment statistic (TVLA-style); more robust than
    the raw mean difference when group sizes are unbalanced.
    """
    traces = np.asarray(traces, dtype=np.float64)
    partition = np.asarray(partition)
    if partition.shape[0] != traces.shape[0]:
        raise ValueError("partition length must equal number of traces")
    ones = partition == 1
    zeros = ~ones
    n1, n0 = int(ones.sum()), int(zeros.sum())
    if n1 < 2 or n0 < 2:
        return np.zeros(traces.shape[1])
    if streaming:
        from ..obs.streaming import WelchTAccumulator, stream_rows

        accumulator = stream_rows(traces, WelchTAccumulator(),
                                  groups=ones.astype(int))
        return accumulator.t_statistic()
    m1 = traces[ones].mean(axis=0)
    m0 = traces[zeros].mean(axis=0)
    v1 = traces[ones].var(axis=0, ddof=1)
    v0 = traces[zeros].var(axis=0, ddof=1)
    denom = np.sqrt(v1 / n1 + v0 / n0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(denom > 0, (m1 - m0) / denom, 0.0)
    return t


def signal_to_noise(traces: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-cycle SNR: Var_over_classes(mean) / mean_over_classes(var).

    The noise floor is the mean *sample* variance (``ddof=1``, matching
    :func:`welch_t_statistic`) over classes with at least two traces;
    singleton classes have no within-class variance estimate at all, so
    counting them as zero-variance would deflate the denominator and
    inflate the SNR.  Their means still contribute to the signal term.
    """
    traces = np.asarray(traces, dtype=np.float64)
    labels = np.asarray(labels)
    if labels.shape[0] != traces.shape[0]:
        raise ValueError("labels length must equal number of traces")
    classes = np.unique(labels)
    if classes.size < 2:
        return np.zeros(traces.shape[1])
    means = np.stack([traces[labels == c].mean(axis=0) for c in classes])
    variances = [traces[labels == c].var(axis=0, ddof=1)
                 for c in classes if (labels == c).sum() >= 2]
    if not variances:
        return np.zeros(traces.shape[1])
    noise = np.stack(variances).mean(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        snr = np.where(noise > 0, means.var(axis=0) / noise, 0.0)
    return snr


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Boxcar smoothing (used by SPA round detection).

    Each output sample is the mean of the input samples actually inside
    the window, so the first/last half-window average over fewer samples
    instead of being dragged toward zero by implicit zero padding (which
    skewed round-boundary detection at the trace edges).  ``window`` is
    clamped to the signal length, so oversized windows are well defined.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if window <= 1 or signal.size == 0:
        return signal
    window = min(window, signal.size)
    kernel = np.ones(window)
    sums = np.convolve(signal, kernel, mode="same")
    counts = np.convolve(np.ones(signal.size), kernel, mode="same")
    return sums / counts
