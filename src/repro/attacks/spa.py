"""Simple power analysis: reading program structure from a single trace.

The paper's Figure 6 shows that one energy trace of the unmasked DES run
"reveal[s] clearly the 16 rounds of operation".  This module mounts that
observation as an attack: given a single per-cycle energy trace it recovers

* the dominant repetition period (the round length), via autocorrelation;
* the number of repetitions (the round count), via matched-filter peak
  counting.

Nothing here uses the program's phase markers — SPA sees only the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stats import moving_average


@dataclass
class SpaResult:
    period: int
    round_count: int
    #: Autocorrelation score of the detected period (0..1).
    score: float
    #: Start cycles of the detected repetitions.
    round_starts: list[int]


def detect_period(energy: np.ndarray, min_period: int = 64,
                  max_period: int | None = None) -> tuple[int, float]:
    """Dominant repetition period of a trace via normalized autocorrelation.

    Returns ``(period, score)`` where score is the normalized correlation at
    the detected lag.  Searches lags in [min_period, max_period].
    """
    signal = np.asarray(energy, dtype=np.float64)
    n = signal.size
    if max_period is None:
        max_period = n // 3
    if max_period <= min_period:
        raise ValueError("trace too short for the requested period range")
    centered = signal - signal.mean()
    # FFT autocorrelation.
    size = 1 << int(np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(centered, size)
    autocorr = np.fft.irfft(spectrum * np.conj(spectrum), size)[:n]
    autocorr /= autocorr[0] if autocorr[0] else 1.0
    window = autocorr[min_period:max_period]
    # The fundamental period may have a weaker peak than its multiples when
    # rounds alternate slightly (DES shift amounts 1/2); take the smallest
    # lag whose correlation is within 90% of the global maximum.
    best = float(window.max())
    candidates = np.nonzero(window >= 0.9 * best)[0]
    lag = int(candidates[0]) + min_period
    return lag, float(autocorr[lag])


def count_rounds(energy: np.ndarray, period: int,
                 smooth_window: int = 32) -> tuple[int, list[int]]:
    """Count repetitions of a period-long pattern in the trace.

    Uses the first detected period as a matched filter template and counts
    well-separated correlation peaks.
    """
    signal = moving_average(np.asarray(energy, dtype=np.float64),
                            smooth_window)
    signal = signal - signal.mean()
    n = signal.size
    if 2 * period >= n:
        return 0, []
    # Template selection: find the most *self-similar* segment — one whose
    # next period repeats it (a round body, not the pre/post-amble).
    stride = max(1, period // 8)
    starts_and_sims: list[tuple[int, float]] = []
    for start in range(0, n - 2 * period, stride):
        first = signal[start:start + period]
        second = signal[start + period:start + 2 * period]
        denom = np.linalg.norm(first) * np.linalg.norm(second)
        if denom <= 0:
            continue
        starts_and_sims.append(
            (start, float(np.dot(first, second) / denom)))
    if not starts_and_sims:
        return 0, []
    best_sim = max(sim for _, sim in starts_and_sims)
    # The earliest strongly-repeating position anchors the template near the
    # first repetition.  The anchor's *phase* within the period decides
    # whether boundary repetitions fit inside the trace, so try a few phase
    # shifts of the anchor and keep whichever detects the most repetitions.
    coarse = next(start for start, sim in starts_and_sims
                  if sim >= 0.95 * best_sim)
    squares = np.concatenate(([0.0], np.cumsum(signal * signal)))
    local = np.sqrt(np.maximum(squares[period:] - squares[:-period], 1e-12))

    threshold = 0.7

    def half_similarity(template: np.ndarray, position: int) -> float:
        """Cosine over the first half-period only (boundary probe)."""
        half = period // 2
        if position < 0 or position + half > n:
            return -1.0
        window = signal[position:position + half]
        head = template[:half]
        denom = np.linalg.norm(window) * np.linalg.norm(head)
        if denom <= 0:
            return -1.0
        return float(np.dot(window, head) / denom)

    def peaks_for(template_start: int) -> list[int]:
        template = signal[template_start:template_start + period]
        template_norm = np.linalg.norm(template)
        if template_norm == 0:
            return []
        correlation = np.correlate(signal, template, mode="valid")
        similarity = correlation / (template_norm * local)
        # Greedy peak picking: accept in descending similarity order,
        # suppressing anything within 3/4 period of an accepted peak.
        # Repetitions score >0.9 and non-repeating regions ~0.
        min_distance = (period * 3) // 4
        candidates = np.nonzero(similarity >= threshold)[0]
        order = candidates[np.argsort(-similarity[candidates])]
        accepted: list[int] = []
        for position in order:
            if all(abs(int(position) - peak) >= min_distance
                   for peak in accepted):
                accepted.append(int(position))
        accepted.sort()
        if not accepted:
            return accepted
        # Boundary repetitions: a template anchored mid-repetition pushes
        # the first/last occurrence's full window into the pre/post-amble.
        # Probe one period beyond each end with a half-period template.
        leading = accepted[0] - period
        if half_similarity(template, leading) >= threshold:
            accepted.insert(0, leading)
        trailing = accepted[-1] + period
        if half_similarity(template, trailing) >= threshold:
            accepted.append(trailing)
        return accepted

    best_peaks: list[int] = []
    for shift in range(0, period, max(1, period // 4)):
        anchor = coarse + shift
        if anchor + 2 * period > n:
            break
        peaks = peaks_for(anchor)
        if len(peaks) > len(best_peaks):
            best_peaks = peaks
    return len(best_peaks), best_peaks


def analyze(energy: np.ndarray, min_period: int = 64,
            max_period: int | None = None) -> SpaResult:
    """Full SPA pass: period detection + round counting."""
    period, score = detect_period(energy, min_period, max_period)
    rounds, starts = count_rounds(energy, period)
    return SpaResult(period=period, round_count=rounds, score=score,
                     round_starts=starts)
