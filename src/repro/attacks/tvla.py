"""TVLA-style leakage assessment (fixed-vs-random Welch t-test).

Test Vector Leakage Assessment (Goodwill et al.) is the standard
non-specific evaluation: collect one trace set with a *fixed* plaintext
and one with *random* plaintexts (same key), compute Welch's t-statistic
per cycle, and flag any |t| above the 4.5 threshold as evidence of
data-dependent leakage.  Unlike DPA/CPA it needs no key hypothesis or
leakage model, so it bounds *all* first-order attacks at once.

For this reproduction it gives a single pass/fail number per device:

* the unmasked DES fails massively (the plaintext-derived round data
  modulates the trace);
* the selectively-masked DES shows |t| = 0 on every secured cycle — not
  merely below threshold, identically zero, because the secured cycles
  are constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..isa.program import Program
from .stats import welch_t_statistic

#: Conventional TVLA pass/fail threshold.
T_THRESHOLD = 4.5


@dataclass
class TvlaResult:
    """Outcome of one fixed-vs-random assessment."""

    t_statistic: np.ndarray        # per cycle
    threshold: float = T_THRESHOLD

    @property
    def max_abs_t(self) -> float:
        return float(np.abs(self.t_statistic).max()) \
            if self.t_statistic.size else 0.0

    @property
    def leaky_cycles(self) -> int:
        return int((np.abs(self.t_statistic) > self.threshold).sum())

    @property
    def passes(self) -> bool:
        """True when no cycle exceeds the threshold (no detected leak)."""
        return self.leaky_cycles == 0


def fixed_vs_random(fixed_traces: np.ndarray,
                    random_traces: np.ndarray,
                    threshold: float = T_THRESHOLD) -> TvlaResult:
    """Welch t-test between a fixed-input set and a random-input set.

    Deterministic-simulator corner case: a cycle where *both* groups have
    zero variance but different means is a definite leak (infinite t in
    the limit); it is reported as ±inf rather than the 0 the plain Welch
    formula would produce.
    """
    fixed_traces = np.asarray(fixed_traces, dtype=np.float64)
    random_traces = np.asarray(random_traces, dtype=np.float64)
    if fixed_traces.shape[1] != random_traces.shape[1]:
        raise ValueError("trace sets are not cycle-aligned")
    traces = np.vstack([fixed_traces, random_traces])
    partition = np.concatenate([np.zeros(fixed_traces.shape[0], dtype=int),
                                np.ones(random_traces.shape[0], dtype=int)])
    t = welch_t_statistic(traces, partition)
    mean_diff = random_traces.mean(axis=0) - fixed_traces.mean(axis=0)
    zero_variance = (fixed_traces.var(axis=0) == 0) \
        & (random_traces.var(axis=0) == 0)
    definite = zero_variance & (mean_diff != 0)
    t = np.where(definite, np.copysign(np.inf, mean_diff), t)
    return TvlaResult(t_statistic=t, threshold=threshold)


def assess_des_program(program: Program, key: int, fixed_plaintext: int,
                       random_plaintexts: list[int],
                       params: EnergyParams = DEFAULT_PARAMS,
                       window: Optional[tuple[int, int]] = None,
                       noise_sigma: float = 0.0) -> TvlaResult:
    """Run the full fixed-vs-random acquisition against a DES program.

    The fixed set re-measures the same plaintext ``len(random_plaintexts)``
    times (identical traces when ``noise_sigma`` is 0 — the simulator is
    deterministic, which only makes the test *more* sensitive).
    """
    from ..harness.runner import des_run

    def acquire(plaintext: int, seed: int) -> np.ndarray:
        run = des_run(program, key, plaintext, params=params,
                      noise_sigma=noise_sigma, noise_seed=seed)
        energy = run.trace.energy
        if window is not None:
            energy = energy[window[0]:window[1]]
        return energy

    fixed = np.vstack([acquire(fixed_plaintext, seed=1000 + i)
                       for i in range(len(random_plaintexts))])
    randoms = np.vstack([acquire(plaintext, seed=2000 + i)
                         for i, plaintext in enumerate(random_plaintexts)])
    return fixed_vs_random(fixed, randoms)
