"""TVLA-style leakage assessment (fixed-vs-random Welch t-test).

Test Vector Leakage Assessment (Goodwill et al.) is the standard
non-specific evaluation: collect one trace set with a *fixed* plaintext
and one with *random* plaintexts (same key), compute Welch's t-statistic
per cycle, and flag any |t| above the 4.5 threshold as evidence of
data-dependent leakage.  Unlike DPA/CPA it needs no key hypothesis or
leakage model, so it bounds *all* first-order attacks at once.

For this reproduction it gives a single pass/fail number per device:

* the unmasked DES fails massively (the plaintext-derived round data
  modulates the trace);
* the selectively-masked DES shows |t| = 0 on every secured cycle — not
  merely below threshold, identically zero, because the secured cycles
  are constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..isa.program import Program
from ..obs.streaming import DisclosureCurve, WelchTAccumulator
from .stats import welch_t_statistic

#: Conventional TVLA pass/fail threshold.
T_THRESHOLD = 4.5


@dataclass
class TvlaResult:
    """Outcome of one fixed-vs-random assessment."""

    t_statistic: np.ndarray        # per cycle
    threshold: float = T_THRESHOLD

    @property
    def max_abs_t(self) -> float:
        return float(np.abs(self.t_statistic).max()) \
            if self.t_statistic.size else 0.0

    @property
    def leaky_cycles(self) -> int:
        return int((np.abs(self.t_statistic) > self.threshold).sum())

    @property
    def passes(self) -> bool:
        """True when no cycle exceeds the threshold (no detected leak)."""
        return self.leaky_cycles == 0


def fixed_vs_random(fixed_traces: np.ndarray,
                    random_traces: np.ndarray,
                    threshold: float = T_THRESHOLD) -> TvlaResult:
    """Welch t-test between a fixed-input set and a random-input set.

    Deterministic-simulator corner case: a cycle where *both* groups have
    zero variance but different means is a definite leak (infinite t in
    the limit); it is reported as ±inf rather than the 0 the plain Welch
    formula would produce.
    """
    fixed_traces = np.asarray(fixed_traces, dtype=np.float64)
    random_traces = np.asarray(random_traces, dtype=np.float64)
    if fixed_traces.shape[1] != random_traces.shape[1]:
        raise ValueError("trace sets are not cycle-aligned")
    traces = np.vstack([fixed_traces, random_traces])
    partition = np.concatenate([np.zeros(fixed_traces.shape[0], dtype=int),
                                np.ones(random_traces.shape[0], dtype=int)])
    t = welch_t_statistic(traces, partition)
    mean_diff = random_traces.mean(axis=0) - fixed_traces.mean(axis=0)
    zero_variance = (fixed_traces.var(axis=0) == 0) \
        & (random_traces.var(axis=0) == 0)
    definite = zero_variance & (mean_diff != 0)
    t = np.where(definite, np.copysign(np.inf, mean_diff), t)
    return TvlaResult(t_statistic=t, threshold=threshold)


def assess_des_program(program: Program, key: int, fixed_plaintext: int,
                       random_plaintexts: list[int],
                       params: EnergyParams = DEFAULT_PARAMS,
                       window: Optional[tuple[int, int]] = None,
                       noise_sigma: float = 0.0) -> TvlaResult:
    """Run the full fixed-vs-random acquisition against a DES program.

    The fixed set re-measures the same plaintext ``len(random_plaintexts)``
    times (identical traces when ``noise_sigma`` is 0 — the simulator is
    deterministic, which only makes the test *more* sensitive).
    """
    from ..harness.runner import des_run

    def acquire(plaintext: int, seed: int) -> np.ndarray:
        run = des_run(program, key, plaintext, params=params,
                      noise_sigma=noise_sigma, noise_seed=seed)
        energy = run.trace.energy
        if window is not None:
            energy = energy[window[0]:window[1]]
        return energy

    fixed = np.vstack([acquire(fixed_plaintext, seed=1000 + i)
                       for i in range(len(random_plaintexts))])
    randoms = np.vstack([acquire(plaintext, seed=2000 + i)
                         for i, plaintext in enumerate(random_plaintexts)])
    return fixed_vs_random(fixed, randoms)


@dataclass
class StreamingTvlaResult:
    """Outcome of a streaming fixed-vs-random campaign.

    Same verdict surface as :class:`TvlaResult` (available as
    :attr:`result`), plus the campaign-scale observables: the
    traces-to-disclosure curve and how many traces were consumed.
    """

    result: TvlaResult
    curve: DisclosureCurve
    traces_consumed: int

    @property
    def disclosure_traces(self) -> Optional[int]:
        """Total traces (both groups) at sustained |t| ≥ threshold, or
        ``None`` when the device never disclosed within the budget."""
        return self.curve.disclosure_traces


def _streaming_welch_campaign(batch: list, groups: list[int],
                              window: Optional[tuple[int, int]],
                              jobs: int, chunk_size: int,
                              checkpoint_every: int, threshold: float
                              ) -> StreamingTvlaResult:
    """Drive an interleaved two-group batch through
    :func:`repro.harness.engine.run_stream` into a Welch-t accumulator.

    ``batch``/``groups`` must alternate group 0 / group 1 jobs so every
    prefix stays balanced.  A disclosure-curve point (max |t| vs total
    traces) is recorded every ``checkpoint_every`` trace pairs, and the
    ambient progress reporter — when one is active — gets a ``max_abs_t``
    watermark at the same cadence, so heartbeats show the verdict
    mid-flight.
    """
    from ..harness.engine import run_stream
    from ..obs import progress as obs_progress

    accumulator = WelchTAccumulator()
    curve = DisclosureCurve(threshold=threshold, mode="t")

    def consume(index: int, result) -> None:
        energy = result.energy
        if window is not None:
            energy = energy[window[0]:window[1]]
        accumulator.update(energy, groups[index])
        pairs_done, odd = divmod(index + 1, 2)
        at_checkpoint = odd == 0 and pairs_done % checkpoint_every == 0
        if at_checkpoint or index + 1 == len(batch):
            watermark = accumulator.max_abs_t()
            if at_checkpoint:
                curve.record(index + 1, watermark)
            reporter = obs_progress.current()
            if reporter is not None:
                reporter.set_watermark("max_abs_t", watermark)

    consumed = run_stream(batch, consume, jobs=jobs, chunk_size=chunk_size)
    t = accumulator.t_statistic(definite_leaks=True)
    return StreamingTvlaResult(
        result=TvlaResult(t_statistic=t, threshold=threshold),
        curve=curve, traces_consumed=consumed)


def streaming_assess_des_program(
        program: Program, key: int, fixed_plaintext: int,
        random_plaintexts: list[int],
        params: EnergyParams = DEFAULT_PARAMS,
        window: Optional[tuple[int, int]] = None,
        noise_sigma: float = 0.0, jobs: int = 1, chunk_size: int = 16,
        checkpoint_every: Optional[int] = None,
        threshold: float = T_THRESHOLD) -> StreamingTvlaResult:
    """Fixed-vs-random assessment in O(1) trace memory.

    The campaign-scale twin of :func:`assess_des_program`: the same
    acquisitions (identical noise seeds — fixed trace *i* uses
    ``1000 + i``, random trace *i* uses ``2000 + i``) are executed in
    chunks through :func:`repro.harness.engine.run_stream` and folded
    into a :class:`~repro.obs.streaming.WelchTAccumulator` one trace at a
    time, so peak memory is independent of the trace budget.  Jobs are
    interleaved fixed/random so the two groups stay balanced at every
    prefix, and a :class:`~repro.obs.streaming.DisclosureCurve` samples
    max |t| every ``checkpoint_every`` trace *pairs* (default: once per
    chunk) — its x-axis is **total traces consumed** (both groups).

    The t-statistic matches :func:`fixed_vs_random` on the same traces,
    including the zero-variance ±inf definite-leak rule.
    """
    from ..harness.engine import SimJob
    from ..machine import fastpath

    if fastpath.resolve_engine(None) in ("fast", "vector"):
        fastpath.ensure_schedule(program)
    if checkpoint_every is None:
        checkpoint_every = max(chunk_size // 2, 1)
    batch = []
    groups = []
    for index, plaintext in enumerate(random_plaintexts):
        batch.append(SimJob(program=program, des_pair=(key, fixed_plaintext),
                            params=params, noise_sigma=noise_sigma,
                            noise_seed=1000 + index,
                            label=f"fixed[{index}]"))
        groups.append(0)
        batch.append(SimJob(program=program, des_pair=(key, plaintext),
                            params=params, noise_sigma=noise_sigma,
                            noise_seed=2000 + index,
                            label=f"random[{index}]"))
        groups.append(1)
    return _streaming_welch_campaign(batch, groups, window, jobs,
                                     chunk_size, checkpoint_every, threshold)


def streaming_key_differential(
        program: Program, key_a: int, key_b: int, plaintext: int,
        n_traces: int, params: EnergyParams = DEFAULT_PARAMS,
        window: Optional[tuple[int, int]] = None,
        noise_sigma: float = 0.0, jobs: int = 1, chunk_size: int = 16,
        checkpoint_every: Optional[int] = None,
        threshold: float = T_THRESHOLD) -> StreamingTvlaResult:
    """Key-differential Welch-t campaign: does key A vs key B disclose?

    The streaming, noise-tolerant generalization of the paper's Fig. 8/9
    differential traces: ``n_traces`` acquisitions per key (group A seeds
    ``1000 + i``, group B seeds ``2000 + i``, same plaintext) are folded
    into a Welch-t accumulator, and the disclosure curve answers *how
    many traces* an attacker needs before |t| crosses the threshold — or
    shows the masked device never disclosing within the budget.
    """
    from ..harness.engine import SimJob
    from ..machine import fastpath

    if fastpath.resolve_engine(None) in ("fast", "vector"):
        fastpath.ensure_schedule(program)
    if checkpoint_every is None:
        checkpoint_every = max(chunk_size // 2, 1)
    batch = []
    groups = []
    for index in range(n_traces):
        batch.append(SimJob(program=program, des_pair=(key_a, plaintext),
                            params=params, noise_sigma=noise_sigma,
                            noise_seed=1000 + index,
                            label=f"key_a[{index}]"))
        groups.append(0)
        batch.append(SimJob(program=program, des_pair=(key_b, plaintext),
                            params=params, noise_sigma=noise_sigma,
                            noise_seed=2000 + index,
                            label=f"key_b[{index}]"))
        groups.append(1)
    return _streaming_welch_campaign(batch, groups, window, jobs,
                                     chunk_size, checkpoint_every, threshold)
