"""Timing attacks against early-exit comparisons.

The paper's introduction motivates masking with exactly this scenario:
"power analysis can be used to identify the specific portions of the
program being executed to induce timing glitches that may in turn help to
bypass key checking."  An early-exit comparison (PIN check, MAC check)
runs longer the more leading digits match, so an attacker who can measure
execution time extracts the secret digit by digit: at most
``positions x alphabet`` guesses instead of ``alphabet ^ positions``.

:func:`extract_secret_by_timing` automates the attack against any compiled
program exposing a guess symbol; the device model is simply "run the
program, observe the cycle count".  Against a constant-time (masked,
branch-free) implementation the oracle is flat and the attack returns no
information — which is how the tests use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.program import Program
from ..machine.cpu import run_to_halt


@dataclass
class TimingAttackResult:
    """Outcome of a digit-by-digit timing extraction."""

    recovered: list[Optional[int]]
    #: cycle counts observed per (position, guess) — the attack transcript.
    measurements: int = 0
    #: True when every position produced a unique timing maximum.
    conclusive: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def fully_recovered(self) -> bool:
        return self.conclusive and all(d is not None for d in self.recovered)


def measure_cycles(program: Program, guess_symbol: str, guess: list[int],
                   fixed_inputs: Optional[dict[str, list[int]]] = None,
                   max_cycles: int = 10_000_000) -> int:
    """The attacker's oracle: total cycles for one guess."""
    inputs = dict(fixed_inputs or {})
    inputs[guess_symbol] = guess
    return run_to_halt(program, inputs=inputs, max_cycles=max_cycles).cycles


def extract_secret_by_timing(program: Program, guess_symbol: str,
                             positions: int, alphabet: int = 10,
                             fixed_inputs: Optional[dict[str,
                                                         list[int]]] = None,
                             filler: int = 0) -> TimingAttackResult:
    """Recover an early-exit-compared secret one position at a time.

    For each position, tries every symbol of the alphabet (holding the
    already-recovered prefix) and locks in the guess whose run takes
    strictly the longest — with an early-exit comparison, the guess that
    survives one more digit runs one more loop iteration.  If no guess
    stands out (a constant-time target), the position is left as None and
    the attack is marked inconclusive.
    """
    recovered: list[Optional[int]] = [None] * positions
    measurements = 0
    conclusive = True
    notes: list[str] = []
    prefix: list[int] = []
    for position in range(positions):
        timings: dict[int, int] = {}
        for symbol in range(alphabet):
            guess = prefix + [symbol] \
                + [filler] * (positions - position - 1)
            timings[symbol] = measure_cycles(program, guess_symbol, guess,
                                             fixed_inputs)
            measurements += 1
        longest = max(timings.values())
        winners = [symbol for symbol, cycles in timings.items()
                   if cycles == longest]
        if len(winners) == 1:
            recovered[position] = winners[0]
            prefix.append(winners[0])
        else:
            conclusive = False
            notes.append(
                f"position {position}: {len(winners)} guesses tie at "
                f"{longest} cycles — no timing signal")
            break
    return TimingAttackResult(recovered=recovered,
                              measurements=measurements,
                              conclusive=conclusive, notes=notes)
