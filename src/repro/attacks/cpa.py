"""Correlation power analysis (CPA) against the simulated implementation.

CPA (Brier/Clavier/Olivier) generalizes DPA: instead of partitioning
traces on one predicted bit, it correlates the trace at each cycle with a
*leakage model* of a predicted intermediate — here the Hamming weight of a
round-1 DES S-box output (the transition-sensitive energy model makes
switching energy roughly proportional to toggled bits, so Hamming-style
models fit this simulator the same way they fit CMOS hardware).

The correct subkey guess predicts the device's real intermediate, so its
correlation trace shows a peak; wrong guesses decorrelate.  Against the
masked device the secured cycles are constants across traces, their
variance is zero, and every correlation is identically zero: CPA, like
DPA, has nothing to work with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .dpa import GuessScore, TraceSet
from .selection import predict_sbox_output_bit, true_round1_subkey_chunk


@dataclass
class CpaResult:
    box: int
    scores: list[GuessScore]       # sorted by |correlation| peak, descending
    true_subkey: Optional[int] = None

    @property
    def best_guess(self) -> int:
        return self.scores[0].guess

    @property
    def rank_of_true(self) -> Optional[int]:
        if self.true_subkey is None:
            return None
        for rank, score in enumerate(self.scores):
            if score.guess == self.true_subkey:
                return rank
        return None  # pragma: no cover

    @property
    def margin(self) -> float:
        best = self.scores[0].peak
        runner_up = self.scores[1].peak if len(self.scores) > 1 else 0.0
        if runner_up <= 0:
            return float("inf") if best > 0 else 1.0
        return best / runner_up

    def succeeded(self, noise_floor: float = 1e-6) -> bool:
        return self.rank_of_true == 0 and self.scores[0].peak > noise_floor


def predicted_hamming_weights(plaintexts: list[int], guess: int,
                              box: int) -> np.ndarray:
    """Hamming weight of the predicted round-1 S-box output, per trace."""
    weights = np.zeros(len(plaintexts), dtype=np.float64)
    for row, plaintext in enumerate(plaintexts):
        weights[row] = sum(
            predict_sbox_output_bit(plaintext, guess, box, bit)
            for bit in range(4))
    return weights


def correlation_trace(traces: np.ndarray,
                      predictions: np.ndarray) -> np.ndarray:
    """Pearson correlation between the prediction vector and every cycle.

    Cycles (or predictions) with zero variance yield correlation 0 rather
    than NaN — a constant signal carries no information.
    """
    traces = np.asarray(traces, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    n = traces.shape[0]
    if predictions.shape[0] != n:
        raise ValueError("prediction vector length must match trace count")
    h_centered = predictions - predictions.mean()
    h_norm = np.sqrt((h_centered ** 2).sum())
    t_centered = traces - traces.mean(axis=0)
    t_norm = np.sqrt((t_centered ** 2).sum(axis=0))
    numerator = h_centered @ t_centered
    denominator = h_norm * t_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(denominator > 1e-12, numerator / denominator, 0.0)
    return rho


def cpa_attack(trace_set: TraceSet, box: int, key: Optional[int] = None,
               guesses: Optional[list[int]] = None) -> CpaResult:
    """Rank all subkey guesses by peak |correlation|."""
    if guesses is None:
        guesses = list(range(64))
    scores = []
    for guess in guesses:
        predictions = predicted_hamming_weights(trace_set.plaintexts, guess,
                                                box)
        rho = np.abs(correlation_trace(trace_set.traces, predictions))
        peak_cycle = int(rho.argmax()) if rho.size else 0
        scores.append(GuessScore(guess=guess,
                                 peak=float(rho.max()) if rho.size else 0.0,
                                 peak_cycle=peak_cycle))
    scores.sort(key=lambda s: s.peak, reverse=True)
    true_subkey = true_round1_subkey_chunk(key, box) if key is not None \
        else None
    return CpaResult(box=box, scores=scores, true_subkey=true_subkey)
