"""Correlation power analysis (CPA) against the simulated implementation.

CPA (Brier/Clavier/Olivier) generalizes DPA: instead of partitioning
traces on one predicted bit, it correlates the trace at each cycle with a
*leakage model* of a predicted intermediate — here the Hamming weight of a
round-1 DES S-box output (the transition-sensitive energy model makes
switching energy roughly proportional to toggled bits, so Hamming-style
models fit this simulator the same way they fit CMOS hardware).

The correct subkey guess predicts the device's real intermediate, so its
correlation trace shows a peak; wrong guesses decorrelate.  Against the
masked device the secured cycles are constants across traces, their
variance is zero, and every correlation is identically zero: CPA, like
DPA, has nothing to work with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .dpa import GuessScore, TraceSet
from .selection import predict_sbox_output_bit, true_round1_subkey_chunk


@dataclass
class CpaResult:
    box: int
    scores: list[GuessScore]       # sorted by |correlation| peak, descending
    true_subkey: Optional[int] = None

    @property
    def best_guess(self) -> int:
        return self.scores[0].guess

    @property
    def rank_of_true(self) -> Optional[int]:
        if self.true_subkey is None:
            return None
        for rank, score in enumerate(self.scores):
            if score.guess == self.true_subkey:
                return rank
        return None  # pragma: no cover

    @property
    def margin(self) -> float:
        best = self.scores[0].peak
        runner_up = self.scores[1].peak if len(self.scores) > 1 else 0.0
        if runner_up <= 0:
            return float("inf") if best > 0 else 1.0
        return best / runner_up

    def succeeded(self, noise_floor: float = 1e-6) -> bool:
        return self.rank_of_true == 0 and self.scores[0].peak > noise_floor


def predicted_hamming_weights(plaintexts: list[int], guess: int,
                              box: int) -> np.ndarray:
    """Hamming weight of the predicted round-1 S-box output, per trace."""
    weights = np.zeros(len(plaintexts), dtype=np.float64)
    for row, plaintext in enumerate(plaintexts):
        weights[row] = sum(
            predict_sbox_output_bit(plaintext, guess, box, bit)
            for bit in range(4))
    return weights


def correlation_trace(traces: np.ndarray,
                      predictions: np.ndarray) -> np.ndarray:
    """Pearson correlation between the prediction vector and every cycle.

    Cycles (or predictions) with zero variance yield correlation 0 rather
    than NaN — a constant signal carries no information.
    """
    traces = np.asarray(traces, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    n = traces.shape[0]
    if predictions.shape[0] != n:
        raise ValueError("prediction vector length must match trace count")
    h_centered = predictions - predictions.mean()
    h_norm = np.sqrt((h_centered ** 2).sum())
    t_centered = traces - traces.mean(axis=0)
    t_norm = np.sqrt((t_centered ** 2).sum(axis=0))
    numerator = h_centered @ t_centered
    denominator = h_norm * t_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(denominator > 1e-12, numerator / denominator, 0.0)
    return rho


def cpa_attack(trace_set: TraceSet, box: int, key: Optional[int] = None,
               guesses: Optional[list[int]] = None) -> CpaResult:
    """Rank all subkey guesses by peak |correlation|."""
    if guesses is None:
        guesses = list(range(64))
    scores = []
    for guess in guesses:
        predictions = predicted_hamming_weights(trace_set.plaintexts, guess,
                                                box)
        rho = np.abs(correlation_trace(trace_set.traces, predictions))
        peak_cycle = int(rho.argmax()) if rho.size else 0
        scores.append(GuessScore(guess=guess,
                                 peak=float(rho.max()) if rho.size else 0.0,
                                 peak_cycle=peak_cycle))
    scores.sort(key=lambda s: s.peak, reverse=True)
    true_subkey = true_round1_subkey_chunk(key, box) if key is not None \
        else None
    return CpaResult(box=box, scores=scores, true_subkey=true_subkey)


class CpaAccumulator:
    """Streaming CPA: per-guess Pearson correlation in one pass.

    The per-cycle trace moments (n, Σt, Σt²) are shared across all 64
    guesses — only the prediction cross-moments (Σh, Σh², Σh·t) are kept
    per guess — so memory is O(guesses × cycles) regardless of the trace
    budget.  ``merge`` is associative; :meth:`result` matches
    :func:`cpa_attack` semantics (constant cycles or predictions read as
    correlation 0, guard at the same 1e-12 denominator floor).
    """

    def __init__(self, box: int, key=None, guesses=None):
        self.box = box
        self.key = key
        self.guesses = list(guesses) if guesses is not None \
            else list(range(64))
        self.count = 0
        self.sum_t = None
        self.sum_t2 = None
        # per guess: [sum_h, sum_h2, sum_ht (per-cycle array)]
        self.per_guess = {guess: [0.0, 0.0, None] for guess in self.guesses}

    @staticmethod
    def _hamming_weight(plaintext: int, guess: int, box: int) -> float:
        return float(sum(predict_sbox_output_bit(plaintext, guess, box, bit)
                         for bit in range(4)))

    def update(self, plaintext: int, energy: np.ndarray) -> None:
        row = np.asarray(energy, dtype=np.float64)
        if self.sum_t is None:
            self.sum_t = np.zeros_like(row)
            self.sum_t2 = np.zeros_like(row)
            for cell in self.per_guess.values():
                cell[2] = np.zeros_like(row)
        elif row.shape != self.sum_t.shape:
            raise ValueError("trace is not cycle-aligned with accumulator")
        self.count += 1
        self.sum_t += row
        self.sum_t2 += row * row
        for guess in self.guesses:
            h = self._hamming_weight(plaintext, guess, self.box)
            cell = self.per_guess[guess]
            cell[0] += h
            cell[1] += h * h
            cell[2] += h * row

    def merge(self, other: "CpaAccumulator") -> None:
        if other.box != self.box or other.guesses != self.guesses:
            raise ValueError("cannot merge accumulators over different "
                             "attack hypotheses")
        if other.sum_t is None:
            return
        if self.sum_t is None:
            self.sum_t = other.sum_t.copy()
            self.sum_t2 = other.sum_t2.copy()
            for guess in self.guesses:
                cell, other_cell = self.per_guess[guess], \
                    other.per_guess[guess]
                cell[0], cell[1] = other_cell[0], other_cell[1]
                cell[2] = other_cell[2].copy()
            self.count = other.count
            return
        self.count += other.count
        self.sum_t += other.sum_t
        self.sum_t2 += other.sum_t2
        for guess in self.guesses:
            cell, other_cell = self.per_guess[guess], other.per_guess[guess]
            cell[0] += other_cell[0]
            cell[1] += other_cell[1]
            cell[2] += other_cell[2]

    def correlation(self, guess: int) -> np.ndarray:
        if self.sum_t is None or self.count < 2:
            return np.zeros(self.sum_t.shape if self.sum_t is not None
                            else (0,))
        n = self.count
        sum_h, sum_h2, sum_ht = self.per_guess[guess]
        h_ss = max(n * sum_h2 - sum_h * sum_h, 0.0)
        t_ss = np.maximum(n * self.sum_t2 - self.sum_t * self.sum_t, 0.0)
        numerator = n * sum_ht - sum_h * self.sum_t
        # The batch path compares centered norms (√SS) against 1e-12;
        # these are raw n-scaled sums-of-squares, so scale the floor to
        # guard the same magnitude.
        denominator = np.sqrt(h_ss * t_ss)
        with np.errstate(divide="ignore", invalid="ignore"):
            rho = np.where(denominator > n * 1e-12,
                           numerator / denominator, 0.0)
        return rho

    def result(self) -> "CpaResult":
        scores = []
        for guess in self.guesses:
            rho = np.abs(self.correlation(guess))
            peak_cycle = int(rho.argmax()) if rho.size else 0
            scores.append(GuessScore(
                guess=guess,
                peak=float(rho.max()) if rho.size else 0.0,
                peak_cycle=peak_cycle))
        scores.sort(key=lambda s: s.peak, reverse=True)
        true_subkey = true_round1_subkey_chunk(self.key, self.box) \
            if self.key is not None else None
        return CpaResult(box=self.box, scores=scores,
                         true_subkey=true_subkey)
