"""CPA/DPA selection functions for first-round AES-128.

The classic AES attack targets the first SubBytes: byte ``i`` of the state
after the initial AddRoundKey is ``plaintext[i] ^ key[i]``, so guessing one
key byte (256 candidates) lets the attacker predict ``SBOX[pt ^ guess]``
and correlate its Hamming weight (or partition on one bit) against the
traces.  Each key byte is recovered independently — the whole 128-bit key
falls to 16 small searches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..aes.reference import int_to_state
from ..aes.tables import SBOX
from .cpa import CpaResult, correlation_trace
from .dpa import GuessScore, TraceSet


def aes_plaintext_byte(plaintext: int, byte_index: int) -> int:
    """Byte ``byte_index`` (FIPS order) of a 128-bit plaintext."""
    if not 0 <= byte_index < 16:
        raise ValueError(f"byte index out of range: {byte_index}")
    return int_to_state(plaintext)[byte_index]


def predict_sbox_output(plaintext: int, guess: int, byte_index: int) -> int:
    """SubBytes output byte for one key-byte guess."""
    if not 0 <= guess < 256:
        raise ValueError("key-byte guess must be 8 bits")
    return SBOX[aes_plaintext_byte(plaintext, byte_index) ^ guess]


def predicted_hamming_weights(plaintexts: list[int], guess: int,
                              byte_index: int) -> np.ndarray:
    """Hamming weight of the predicted SubBytes output, per trace."""
    return np.fromiter(
        (predict_sbox_output(pt, guess, byte_index).bit_count()
         for pt in plaintexts),
        dtype=np.float64, count=len(plaintexts))


def true_key_byte(key: int, byte_index: int) -> int:
    """Ground truth: byte ``byte_index`` of the AES key."""
    return int_to_state(key)[byte_index]


def aes_cpa_attack(trace_set: TraceSet, byte_index: int,
                   key: Optional[int] = None,
                   guesses: Optional[list[int]] = None) -> CpaResult:
    """Rank all 256 key-byte guesses by peak |correlation|."""
    if guesses is None:
        guesses = list(range(256))
    scores = []
    for guess in guesses:
        predictions = predicted_hamming_weights(trace_set.plaintexts, guess,
                                                byte_index)
        rho = np.abs(correlation_trace(trace_set.traces, predictions))
        peak_cycle = int(rho.argmax()) if rho.size else 0
        scores.append(GuessScore(guess=guess,
                                 peak=float(rho.max()) if rho.size else 0.0,
                                 peak_cycle=peak_cycle))
    scores.sort(key=lambda s: s.peak, reverse=True)
    truth = true_key_byte(key, byte_index) if key is not None else None
    return CpaResult(box=byte_index, scores=scores, true_subkey=truth)


def random_aes_plaintexts(count: int, seed: int = 197) -> list[int]:
    """Deterministic random 128-bit plaintexts."""
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, 1 << 32, size=(count, 4), dtype=np.uint64)
    return [int(a) << 96 | int(b) << 64 | int(c) << 32 | int(d)
            for a, b, c, d in parts]
