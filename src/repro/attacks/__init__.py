"""Power-analysis attacks: SPA and DPA over simulated traces."""

from .cpa import CpaResult, correlation_trace, cpa_attack, predicted_hamming_weights
from .dpa import (DpaResult, GuessScore, TraceSet, collect_traces,
                  dpa_attack, dpa_attack_multibit, random_plaintexts)
from .second_order import centered_product, second_order_dpa
from .selection import (predict_sbox_output_bit, round1_sbox_input_bits,
                        true_round1_subkey_chunk)
from .timing import TimingAttackResult, extract_secret_by_timing, measure_cycles
from .tvla import T_THRESHOLD, TvlaResult, assess_des_program, fixed_vs_random
from .spa import SpaResult, analyze, count_rounds, detect_period
from .stats import (difference_of_means, max_bias, moving_average,
                    signal_to_noise, welch_t_statistic)

__all__ = [
    "CpaResult", "DpaResult", "GuessScore", "T_THRESHOLD", "TimingAttackResult", "TvlaResult", "SpaResult", "TraceSet", "analyze",
    "collect_traces", "count_rounds", "detect_period",
    "centered_product", "correlation_trace", "cpa_attack", "difference_of_means", "dpa_attack", "extract_secret_by_timing", "measure_cycles", "dpa_attack_multibit", "max_bias", "moving_average",
    "predict_sbox_output_bit", "predicted_hamming_weights", "random_plaintexts",
    "round1_sbox_input_bits", "second_order_dpa", "signal_to_noise",
    "assess_des_program", "fixed_vs_random", "true_round1_subkey_chunk", "welch_t_statistic",
]
