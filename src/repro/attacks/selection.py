"""DPA selection functions for first-round DES.

The classic Kocher-style attack guesses the 6 subkey bits entering one
S-box in round 1 and predicts one bit of that S-box's output from the known
plaintext.  A correct guess makes the prediction match the device's real
intermediate bit, so partitioning traces by the prediction exposes the
data-dependent energy of the downstream computation.
"""

from __future__ import annotations

from ..des.bitops import bits_to_int, int_to_bits, permute
from ..des.keyschedule import key_schedule
from ..des.tables import E, IP
from ..des.reference import sbox_lookup


def round1_sbox_input_bits(plaintext: int, box: int) -> int:
    """The 6 bits of E(R0) feeding S-box ``box`` (0-based), as an integer.

    These depend only on the public plaintext.
    """
    if not 0 <= box < 8:
        raise ValueError(f"S-box index out of range: {box}")
    bits = permute(int_to_bits(plaintext, 64), IP)
    r0 = bits[32:]
    expanded = permute(r0, E)
    return bits_to_int(expanded[6 * box: 6 * box + 6])


def predict_sbox_output_bit(plaintext: int, subkey_guess: int, box: int,
                            bit: int = 0) -> int:
    """Selection function D(plaintext, guess): a round-1 S-box output bit.

    ``subkey_guess`` is the guessed 6-bit chunk of K1 for S-box ``box``;
    ``bit`` selects which of the 4 output bits to target (0 = MSB).
    """
    if not 0 <= subkey_guess < 64:
        raise ValueError("subkey guess must be 6 bits")
    if not 0 <= bit < 4:
        raise ValueError("S-box output bit must be in 0..3")
    six = round1_sbox_input_bits(plaintext, box) ^ subkey_guess
    output = sbox_lookup(box, six)
    return (output >> (3 - bit)) & 1


def true_round1_subkey_chunk(key: int, box: int) -> int:
    """Ground truth: the 6 bits of K1 feeding S-box ``box``."""
    k1 = key_schedule(key)[0]
    return bits_to_int(k1[6 * box: 6 * box + 6])
