"""AES (FIPS-197) tables, generated from first principles.

The S-box is computed from the GF(2^8) inverse composed with the affine
transformation rather than hard-coded, so the table itself is covered by
the algebraic tests.  ``XTIME`` tabulates multiplication by {02} in
GF(2^8) — the masked AES program performs MixColumns through XTIME table
lookups (secure indexed loads) instead of a secret-dependent conditional
reduction, which the architecture could not mask.
"""

from __future__ import annotations

#: The AES irreducible polynomial x^8 + x^4 + x^3 + x + 1.
POLY = 0x11B


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) modulo the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= POLY
        b >>= 1
    return result


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inv(0) is defined as 0."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254.
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gf_mul(result, power)
        power = gf_mul(power, power)
        exponent >>= 1
    return result


def _affine(value: int) -> int:
    result = 0
    for bit in range(8):
        parity = ((value >> bit) & 1)
        for offset in (4, 5, 6, 7):
            parity ^= (value >> ((bit + offset) % 8)) & 1
        parity ^= (0x63 >> bit) & 1
        result |= parity << bit
    return result


def _build_sbox() -> tuple[int, ...]:
    return tuple(_affine(gf_inv(value)) for value in range(256))


#: Forward S-box.
SBOX: tuple[int, ...] = _build_sbox()

#: Inverse S-box.
INV_SBOX: tuple[int, ...] = tuple(
    SBOX.index(value) for value in range(256))

#: Multiplication by {02} in GF(2^8), tabulated.
XTIME: tuple[int, ...] = tuple(gf_mul(value, 2) for value in range(256))

#: Round constants for AES-128 key expansion.
RCON: tuple[int, ...] = (0x01, 0x02, 0x04, 0x08, 0x10,
                         0x20, 0x40, 0x80, 0x1B, 0x36)

#: ShiftRows as a byte permutation over the 16-byte state in column-major
#: (FIPS) order: output[i] = input[SHIFT_ROWS[i]].
SHIFT_ROWS: tuple[int, ...] = tuple(
    (4 * ((column + row) % 4)) + row
    for column in range(4) for row in range(4))

#: Inverse ShiftRows permutation.
INV_SHIFT_ROWS: tuple[int, ...] = tuple(
    SHIFT_ROWS.index(position) for position in range(16))
