"""Reference AES-128 (FIPS-197), byte-oriented.

Golden model for the SecureC AES program and ground truth for attacks.
State is a list of 16 bytes in FIPS column-major order; block/key I/O uses
big-endian 128-bit integers (matching the FIPS-197 example vectors).
"""

from __future__ import annotations

from .tables import INV_SBOX, INV_SHIFT_ROWS, RCON, SBOX, SHIFT_ROWS, gf_mul

BLOCK_BYTES = 16
ROUNDS = 10


def int_to_state(block: int) -> list[int]:
    """128-bit integer -> 16 bytes (FIPS order)."""
    if block < 0 or block >= (1 << 128):
        raise ValueError("block must be a 128-bit integer")
    return [(block >> (8 * (15 - i))) & 0xFF for i in range(16)]


def state_to_int(state: list[int]) -> int:
    """16 bytes (FIPS order) -> 128-bit integer."""
    value = 0
    for byte in state:
        value = (value << 8) | (byte & 0xFF)
    return value


def expand_key(key: int) -> list[int]:
    """AES-128 key expansion: 176 bytes (11 round keys of 16 bytes)."""
    expanded = int_to_state(key)
    for word_index in range(4, 44):
        previous = expanded[4 * (word_index - 1): 4 * word_index]
        if word_index % 4 == 0:
            previous = previous[1:] + previous[:1]          # RotWord
            previous = [SBOX[b] for b in previous]          # SubWord
            previous[0] ^= RCON[word_index // 4 - 1]
        base = 4 * (word_index - 4)
        expanded.extend(expanded[base + i] ^ previous[i] for i in range(4))
    return expanded


def add_round_key(state: list[int], round_key: list[int]) -> list[int]:
    return [s ^ k for s, k in zip(state, round_key)]


def sub_bytes(state: list[int]) -> list[int]:
    return [SBOX[b] for b in state]


def shift_rows(state: list[int]) -> list[int]:
    return [state[SHIFT_ROWS[i]] for i in range(16)]


def mix_columns(state: list[int]) -> list[int]:
    output = [0] * 16
    for column in range(4):
        s0, s1, s2, s3 = state[4 * column: 4 * column + 4]
        output[4 * column + 0] = gf_mul(s0, 2) ^ gf_mul(s1, 3) ^ s2 ^ s3
        output[4 * column + 1] = s0 ^ gf_mul(s1, 2) ^ gf_mul(s2, 3) ^ s3
        output[4 * column + 2] = s0 ^ s1 ^ gf_mul(s2, 2) ^ gf_mul(s3, 3)
        output[4 * column + 3] = gf_mul(s0, 3) ^ s1 ^ s2 ^ gf_mul(s3, 2)
    return output


def inv_shift_rows(state: list[int]) -> list[int]:
    return [state[INV_SHIFT_ROWS[i]] for i in range(16)]


def inv_sub_bytes(state: list[int]) -> list[int]:
    return [INV_SBOX[b] for b in state]


def inv_mix_columns(state: list[int]) -> list[int]:
    output = [0] * 16
    for column in range(4):
        s0, s1, s2, s3 = state[4 * column: 4 * column + 4]
        output[4 * column + 0] = (gf_mul(s0, 14) ^ gf_mul(s1, 11)
                                  ^ gf_mul(s2, 13) ^ gf_mul(s3, 9))
        output[4 * column + 1] = (gf_mul(s0, 9) ^ gf_mul(s1, 14)
                                  ^ gf_mul(s2, 11) ^ gf_mul(s3, 13))
        output[4 * column + 2] = (gf_mul(s0, 13) ^ gf_mul(s1, 9)
                                  ^ gf_mul(s2, 14) ^ gf_mul(s3, 11))
        output[4 * column + 3] = (gf_mul(s0, 11) ^ gf_mul(s1, 13)
                                  ^ gf_mul(s2, 9) ^ gf_mul(s3, 14))
    return output


def encrypt_block(plaintext: int, key: int, rounds: int = ROUNDS) -> int:
    """Encrypt one 128-bit block with AES-128.

    ``rounds`` < 10 runs a reduced-round variant (the last simulated round
    is always the MixColumns-free final round, as in the standard).
    """
    if not 1 <= rounds <= ROUNDS:
        raise ValueError("rounds must be in 1..10")
    round_keys = expand_key(key)
    state = add_round_key(int_to_state(plaintext), round_keys[:16])
    for round_index in range(1, rounds):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(
            state, round_keys[16 * round_index: 16 * round_index + 16])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[16 * rounds: 16 * rounds + 16])
    return state_to_int(state)


def decrypt_block(ciphertext: int, key: int, rounds: int = ROUNDS) -> int:
    """Decrypt one 128-bit block with AES-128."""
    if not 1 <= rounds <= ROUNDS:
        raise ValueError("rounds must be in 1..10")
    round_keys = expand_key(key)
    state = add_round_key(int_to_state(ciphertext),
                          round_keys[16 * rounds: 16 * rounds + 16])
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    for round_index in range(rounds - 1, 0, -1):
        state = add_round_key(
            state, round_keys[16 * round_index: 16 * round_index + 16])
        state = inv_mix_columns(state)
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
    return state_to_int(add_round_key(state, round_keys[:16]))
