"""AES-128 substrate: FIPS-197 tables and reference cipher.

The paper's masking technique is algorithm-agnostic ("our approach is
general and can be extended to other algorithms"); the authors' follow-up
work applies it to AES.  This package provides the AES golden model; the
SecureC AES program lives in :mod:`repro.programs.aes_source`.
"""

from .reference import (BLOCK_BYTES, ROUNDS, decrypt_block, encrypt_block,
                        expand_key, int_to_state, state_to_int)
from .tables import (INV_SBOX, INV_SHIFT_ROWS, POLY, RCON, SBOX, SHIFT_ROWS,
                     XTIME, gf_inv, gf_mul)

__all__ = [
    "BLOCK_BYTES", "INV_SBOX", "INV_SHIFT_ROWS", "POLY", "RCON", "ROUNDS",
    "SBOX", "SHIFT_ROWS", "XTIME", "decrypt_block", "encrypt_block",
    "expand_key", "gf_inv", "gf_mul", "int_to_state", "state_to_int",
]
