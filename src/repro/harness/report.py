"""Plain-text reporting of experiment results (tables and series).

The paper's figures are line plots of per-cycle energy; with no display in
a CI environment we report the same data as decimated numeric series plus
summary statistics, which is what the benchmark assertions consume.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def series_preview(values: np.ndarray, count: int = 12,
                   fmt: str = "{:.1f}") -> str:
    """First/last few values of a long series, for log output."""
    values = np.asarray(values)
    if values.size <= 2 * count:
        return " ".join(fmt.format(v) for v in values)
    head = " ".join(fmt.format(v) for v in values[:count])
    tail = " ".join(fmt.format(v) for v in values[-count:])
    return f"{head} ... {tail}  (n={values.size})"


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


#: Glyph for buckets containing non-finite samples (NaN/inf).
_SPARK_HOLE = "·"


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """Render a series as a unicode sparkline (the terminal's Fig. 6).

    The series is resampled to ``width`` buckets (bucket mean) and each
    bucket maps to one of eight block characters by value.  Buckets
    containing non-finite samples (NaN/inf) render as ``·`` and are
    excluded from the scale, so one bad sample cannot flatten — or crash —
    the rest of the line.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        n = (values.size // width) * width
        buckets = values[:n].reshape(width, -1).mean(axis=1)
    else:
        buckets = values
    finite = np.isfinite(buckets)
    if not finite.any():
        return _SPARK_HOLE * buckets.size
    low = float(buckets[finite].min())
    high = float(buckets[finite].max())
    if high == low:
        return "".join(_SPARK_LEVELS[0] if ok else _SPARK_HOLE
                       for ok in finite)
    top = len(_SPARK_LEVELS) - 1
    with np.errstate(invalid="ignore"):
        scaled = (buckets - low) / (high - low) * top
    return "".join(
        _SPARK_LEVELS[min(top, max(0, int(round(level))))] if ok
        else _SPARK_HOLE
        for ok, level in zip(finite, scaled))


def summarize_series(values: np.ndarray) -> dict[str, float]:
    """Common scalar summaries of a per-cycle series."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return {"n": 0, "mean": 0.0, "max": 0.0, "min": 0.0, "rms": 0.0,
                "nonzero_fraction": 0.0}
    return {
        "n": int(values.size),
        "mean": float(values.mean()),
        "max": float(values.max()),
        "min": float(values.min()),
        "rms": float(np.sqrt((values ** 2).mean())),
        "nonzero_fraction": float(np.count_nonzero(values) / values.size),
    }
