"""Persistence for traces, trace sets, and experiment results.

Energy traces are the expensive artifact in this system (seconds of
simulation each); saving them lets attack development iterate offline, and
lets experiment results be archived/diffed across code changes.

Formats: numpy ``.npz`` for numeric data, JSON for experiment summaries,
CSV for tabular rows.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..attacks.dpa import TraceSet
from ..energy.trace import EnergyTrace
from .experiments import ExperimentResult

PathLike = Union[str, Path]


def save_trace(trace: EnergyTrace, path: PathLike) -> None:
    """Save an EnergyTrace to ``.npz`` (energy, markers, components)."""
    markers = np.asarray(trace.markers, dtype=np.int64).reshape(-1, 2)
    payload = {"energy": trace.energy, "markers": markers,
               "label": np.array(trace.label)}
    if trace.components is not None:
        payload["components"] = trace.components
    np.savez_compressed(Path(path), **payload)


def load_trace(path: PathLike) -> EnergyTrace:
    """Load an EnergyTrace saved by :func:`save_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        markers = tuple((int(cycle), int(value))
                        for cycle, value in data["markers"])
        components = data["components"] if "components" in data else None
        return EnergyTrace(energy=data["energy"], markers=markers,
                           components=components,
                           label=str(data["label"]))


def save_trace_set(trace_set: TraceSet, path: PathLike) -> None:
    """Save a DPA/CPA trace set to ``.npz``."""
    # 128-bit plaintexts exceed int64; store as high/low halves.
    high = np.array([p >> 64 for p in trace_set.plaintexts],
                    dtype=np.uint64)
    low = np.array([p & ((1 << 64) - 1) for p in trace_set.plaintexts],
                   dtype=np.uint64)
    np.savez_compressed(Path(path), traces=trace_set.traces,
                        plaintexts_high=high, plaintexts_low=low,
                        window=np.asarray(trace_set.window, dtype=np.int64))


def load_trace_set(path: PathLike) -> TraceSet:
    """Load a trace set saved by :func:`save_trace_set`."""
    with np.load(Path(path), allow_pickle=False) as data:
        plaintexts = [(int(h) << 64) | int(l)
                      for h, l in zip(data["plaintexts_high"],
                                      data["plaintexts_low"])]
        window = tuple(int(v) for v in data["window"])
        return TraceSet(plaintexts=plaintexts, traces=data["traces"],
                        window=window)


def experiment_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable representation of an experiment result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "summary": {key: (value.item()
                          if isinstance(value, np.generic) else value)
                    for key, value in result.summary.items()},
        "series": {name: values.tolist()
                   for name, values in result.series.items()},
        "rows": [list(row) for row in result.rows],
        "notes": result.notes,
    }


def save_experiment_json(result: ExperimentResult, path: PathLike,
                         include_series: bool = True) -> None:
    """Save an experiment result as JSON."""
    payload = experiment_to_dict(result)
    if not include_series:
        payload["series"] = {name: f"<{len(values)} values omitted>"
                             for name, values in result.series.items()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_experiment_json(path: PathLike) -> dict:
    """Load a saved experiment result (as a plain dict)."""
    return json.loads(Path(path).read_text())


def save_summary_csv(results: list[ExperimentResult],
                     path: PathLike) -> None:
    """Save experiment summaries as long-format CSV
    (experiment_id, key, value)."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["experiment_id", "key", "value"])
        for result in results:
            for key, value in result.summary.items():
                writer.writerow([result.experiment_id, key, value])
