"""Persistence for traces, trace sets, and experiment results.

Energy traces are the expensive artifact in this system (seconds of
simulation each); saving them lets attack development iterate offline, and
lets experiment results be archived/diffed across code changes.

Formats: numpy ``.npz`` for numeric data, JSON for experiment summaries,
CSV for tabular rows, and **streaming** NDJSON/CSV per-cycle trace export
(:class:`StreamingTraceWriter`) whose memory footprint is bounded by a
small line buffer regardless of trace length — million-cycle batch runs
can export their traces without ever holding them in RAM
(``run_with_trace(..., stream=writer, keep_trace=False)``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..attacks.dpa import TraceSet
from ..energy.tracker import COMPONENTS
from ..energy.trace import EnergyTrace
from .experiments import ExperimentResult

PathLike = Union[str, Path]


class StreamingTraceWriter:
    """Bounded-memory per-cycle trace writer (NDJSON or CSV).

    Plugs into :class:`~repro.energy.tracker.EnergyTracker` as its
    ``stream`` sink: the tracker calls :meth:`write_cycle` once per cycle
    and the writer appends one line per cycle, flushing its line buffer
    every ``buffer_cycles`` cycles — memory use is O(buffer), not
    O(cycles).

    * ``ndjson`` — one JSON object per line: ``{"cycle": n, "pj": total}``
      plus a ``"components"`` object when per-component collection is on;
      phase markers can be appended via :meth:`write_marker`.
    * ``csv`` — header ``cycle,total_pj[,<component>...]``; markers are
      not representable and are silently skipped.

    The format defaults from the path suffix (``.csv`` -> csv, anything
    else -> ndjson).  Use as a context manager or call :meth:`close`.
    """

    FORMATS = ("ndjson", "csv")

    def __init__(self, path: PathLike, fmt: Optional[str] = None,
                 buffer_cycles: int = 4096,
                 component_names: Sequence[str] = COMPONENTS):
        self.path = Path(path)
        if fmt is None:
            fmt = "csv" if self.path.suffix.lower() == ".csv" else "ndjson"
        if fmt not in self.FORMATS:
            raise ValueError(f"unknown trace format {fmt!r} "
                             f"(expected one of {self.FORMATS})")
        self.fmt = fmt
        self.component_names = tuple(component_names)
        self.buffer_cycles = max(1, int(buffer_cycles))
        self.cycles_written = 0
        self._buffer: list[str] = []
        self._wrote_header = False
        self._handle = open(self.path, "w", encoding="utf-8")

    # -- tracker sink interface ---------------------------------------

    def write_cycle(self, index: int, total_pj: float,
                    components=None) -> None:
        if self.fmt == "csv":
            if not self._wrote_header:
                names = ",".join(self.component_names) \
                    if components is not None else ""
                header = "cycle,total_pj" + ("," + names if names else "")
                self._buffer.append(header)
                self._wrote_header = True
            line = f"{index},{total_pj!r}"
            if components is not None:
                line += "," + ",".join(repr(value) for value in components)
        else:
            if components is not None:
                parts = ",".join(f'"{name}":{value!r}' for name, value
                                 in zip(self.component_names, components))
                line = (f'{{"cycle":{index},"pj":{total_pj!r},'
                        f'"components":{{{parts}}}}}')
            else:
                line = f'{{"cycle":{index},"pj":{total_pj!r}}}'
        self._buffer.append(line)
        self.cycles_written += 1
        if len(self._buffer) >= self.buffer_cycles:
            self.flush()

    def write_marker(self, cycle: int, value: int) -> None:
        """Append a phase-marker record (NDJSON only)."""
        if self.fmt == "ndjson":
            self._buffer.append(f'{{"marker":{value},"cycle":{cycle}}}')

    def write_markers(self, markers: Sequence[tuple[int, int]]) -> None:
        for cycle, value in markers:
            self.write_marker(cycle, value)

    # -- lifecycle ----------------------------------------------------

    def flush(self) -> None:
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def stream_trace(trace: EnergyTrace, path: PathLike,
                 fmt: Optional[str] = None,
                 buffer_cycles: int = 4096) -> int:
    """Export an in-memory :class:`EnergyTrace` through the streaming
    writer; returns the number of cycles written."""
    with StreamingTraceWriter(path, fmt=fmt,
                              buffer_cycles=buffer_cycles) as writer:
        components = trace.components
        for index, total in enumerate(trace.energy):
            writer.write_cycle(
                index, float(total),
                tuple(float(v) for v in components[index])
                if components is not None else None)
        writer.write_markers(trace.markers)
        return writer.cycles_written


def save_trace(trace: EnergyTrace, path: PathLike) -> None:
    """Save an EnergyTrace to ``.npz`` (energy, markers, components)."""
    markers = np.asarray(trace.markers, dtype=np.int64).reshape(-1, 2)
    payload = {"energy": trace.energy, "markers": markers,
               "label": np.array(trace.label)}
    if trace.components is not None:
        payload["components"] = trace.components
    np.savez_compressed(Path(path), **payload)


def load_trace(path: PathLike) -> EnergyTrace:
    """Load an EnergyTrace saved by :func:`save_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        markers = tuple((int(cycle), int(value))
                        for cycle, value in data["markers"])
        components = data["components"] if "components" in data else None
        return EnergyTrace(energy=data["energy"], markers=markers,
                           components=components,
                           label=str(data["label"]))


def save_trace_set(trace_set: TraceSet, path: PathLike) -> None:
    """Save a DPA/CPA trace set to ``.npz``."""
    # 128-bit plaintexts exceed int64; store as high/low halves.
    high = np.array([p >> 64 for p in trace_set.plaintexts],
                    dtype=np.uint64)
    low = np.array([p & ((1 << 64) - 1) for p in trace_set.plaintexts],
                   dtype=np.uint64)
    np.savez_compressed(Path(path), traces=trace_set.traces,
                        plaintexts_high=high, plaintexts_low=low,
                        window=np.asarray(trace_set.window, dtype=np.int64))


def load_trace_set(path: PathLike) -> TraceSet:
    """Load a trace set saved by :func:`save_trace_set`."""
    with np.load(Path(path), allow_pickle=False) as data:
        plaintexts = [(int(h) << 64) | int(l)
                      for h, l in zip(data["plaintexts_high"],
                                      data["plaintexts_low"])]
        window = tuple(int(v) for v in data["window"])
        return TraceSet(plaintexts=plaintexts, traces=data["traces"],
                        window=window)


def experiment_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable representation of an experiment result."""
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "summary": {key: (value.item()
                          if isinstance(value, np.generic) else value)
                    for key, value in result.summary.items()},
        "series": {name: values.tolist()
                   for name, values in result.series.items()},
        "rows": [list(row) for row in result.rows],
        "notes": result.notes,
    }
    if result.leakage is not None:
        payload["leakage"] = result.leakage.to_dict()
    return payload


def save_experiment_json(result: ExperimentResult, path: PathLike,
                         include_series: bool = True) -> None:
    """Save an experiment result as JSON."""
    payload = experiment_to_dict(result)
    if not include_series:
        payload["series"] = {name: f"<{len(values)} values omitted>"
                             for name, values in result.series.items()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_experiment_json(path: PathLike) -> dict:
    """Load a saved experiment result (as a plain dict)."""
    return json.loads(Path(path).read_text())


def save_summary_csv(results: list[ExperimentResult],
                     path: PathLike) -> None:
    """Save experiment summaries as long-format CSV
    (experiment_id, key, value)."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["experiment_id", "key", "value"])
        for result in results:
            for key, value in result.summary.items():
                writer.writerow([result.experiment_id, key, value])
