"""Fault tolerance for the batch engine: retries, timeouts, recovery.

Every headline number of the reproduction is an aggregate over many
independent simulations, and a long sweep dies in one of a small number
of well-understood ways: a worker process crashes (``BrokenProcessPool``
discards the whole batch), a runaway simulation never halts, a restricted
environment refuses to create a process pool at all, or the operator
kills an hours-long collection that was 90 % done.  This module gives
:func:`repro.harness.engine.run_jobs` a disciplined answer to each:

* **Typed failures** — a failed job becomes a :class:`JobFailure` record
  (exception class, label, attempt count, wall time, and the pc/cycle of
  a :class:`~repro.machine.exceptions.CycleLimitExceeded`) instead of an
  opaque traceback, under the ``collect`` and ``retry`` policies.
* **Bounded attempts** — ``failure_policy="retry"`` re-runs a failed job
  up to ``retries`` more times with *deterministic* jittered backoff:
  the jitter is seeded from ``(noise_seed, index, attempt)``, never the
  wall clock, so a retried batch is bit-identical to a clean one.
* **Bounded time** — ``job_timeout`` arms a wall-clock alarm inside the
  worker (clean :class:`JobTimeout`) plus a parent-side deadline that
  kills and rebuilds the pool if a worker wedges hard; the in-machine
  cycle budget already bounds simulated time via
  :class:`~repro.machine.exceptions.CycleLimitExceeded`.
* **Pool recovery** — on ``BrokenProcessPool`` the pool is rebuilt and
  only unfinished jobs are resubmitted; if the pool keeps breaking
  without progress, or cannot be created at all, execution degrades to
  the serial path with a logged warning instead of crashing.
* **Checkpoint/resume** — ``checkpoint=path`` journals every completed
  :class:`~repro.harness.engine.JobResult` keyed by a digest of the
  batch's content, so an interrupted sweep resumes by recomputing only
  the unfinished jobs.
* **Deterministic fault injection** — ``REPRO_FAULT_PLAN`` makes job N
  crash / hang / raise / return garbage on attempt K, so every recovery
  path above is exercised by real process-pool tests.

The module is woven into the engine: :func:`execute_batch` *is* the
implementation behind ``run_jobs`` for every policy, including the
seed-compatible ``raise`` default.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import random
import signal
import threading
import time
import traceback as traceback_module
import zlib
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from .. import obs
from ..machine.exceptions import CycleLimitExceeded
from ..obs import progress as obs_progress

logger = logging.getLogger("repro.harness.resilience")

#: Environment hook for deterministic fault injection (tests/CI only).
#: Format: ``;``-separated entries of ``TARGET:ATTEMPT:KIND`` where
#: TARGET is a job index or label, ATTEMPT is 1-based (``*`` = every
#: attempt), and KIND is one of ``crash``, ``raise``, ``hang``,
#: ``hang-hard``, ``garbage``.  Example: ``"2:1:crash;trace[5]:*:raise"``.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Base delay (seconds) for the deterministic exponential backoff.
BACKOFF_BASE_S = 0.05
#: Ceiling on a single backoff delay.
BACKOFF_MAX_S = 2.0

#: v2 wraps every record in a CRC-validated frame so a corrupt *middle*
#: of the journal (bit rot, torn write) is detected, not unpickled.
_CHECKPOINT_SCHEMA = "repro.checkpoint/v2"


class BatchInterrupted(RuntimeError):
    """The operator interrupted a batch (SIGTERM/SIGINT).

    Raised by :func:`execute_batch` after an orderly stop: in-flight
    pool workers are killed, every completed job is already fsync'd in
    the checkpoint journal (when one is active), and a final forced
    heartbeat records how far the batch got.  A rerun with the same
    ``checkpoint=`` path resumes from ``done`` completed jobs.
    """

    def __init__(self, signum: int, done: int, total: int):
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        super().__init__(
            f"batch interrupted by {name} after {done}/{total} job(s); "
            "checkpointed work is preserved")
        self.signum = signum
        self.done = done
        self.total = total


class JobTimeout(RuntimeError):
    """A job exceeded its wall-clock budget (raised inside the worker)."""

    def __init__(self, seconds: float):
        super().__init__(f"job exceeded wall-clock timeout of {seconds}s")
        self.seconds = seconds

    def __reduce__(self):
        return (type(self), (self.seconds,))


@dataclass
class JobFailure:
    """One job that ultimately failed, reduced to a structured record.

    Appears in the results list (in the job's submission slot) under the
    ``collect`` policy, and under ``retry`` once the attempt budget is
    exhausted.  ``pc``/``cycles`` are populated when the underlying error
    was a :class:`~repro.machine.exceptions.CycleLimitExceeded`.
    """

    label: str
    index: int
    error_type: str
    message: str
    attempts: int
    wall_time_s: float = 0.0
    pc: Optional[int] = None
    cycles: Optional[int] = None
    traceback: Optional[str] = None


class BatchError(RuntimeError):
    """A batch that required complete results ended with failures."""

    def __init__(self, failures: Sequence[JobFailure]):
        self.failures = list(failures)
        preview = "; ".join(
            f"[{f.index}] {f.label or '<unlabeled>'}: {f.error_type} "
            f"after {f.attempts} attempt(s)" for f in self.failures[:4])
        more = len(self.failures) - 4
        if more > 0:
            preview += f"; ... {more} more"
        super().__init__(f"{len(self.failures)} job(s) failed: {preview}")


def require_results(results: Sequence) -> list:
    """Assert a batch completed fully; raise :class:`BatchError` if not.

    Callers that cannot use partial results (DPA needs every trace, a
    sweep point needs all four policies) funnel ``run_jobs`` output
    through this instead of crashing on a surprise :class:`JobFailure`
    deep inside numpy.
    """
    failures = [entry for entry in results if isinstance(entry, JobFailure)]
    if failures:
        raise BatchError(failures)
    return list(results)


# ---------------------------------------------------------------------------
# Deterministic fault injection (REPRO_FAULT_PLAN)
# ---------------------------------------------------------------------------


class FaultInjected(RuntimeError):
    """The failure raised by a ``raise`` entry of the fault plan."""


@lru_cache(maxsize=8)
def _parse_fault_plan(text: str) -> tuple[tuple[str, str, str], ...]:
    entries = []
    for raw in text.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.rsplit(":", 2)
        if len(parts) != 3:
            raise ValueError(f"bad {FAULT_PLAN_ENV} entry {raw!r}; expected "
                             "TARGET:ATTEMPT:KIND")
        target, attempt, kind = parts
        if kind not in ("crash", "raise", "hang", "hang-hard", "garbage"):
            raise ValueError(f"unknown fault kind {kind!r} in {raw!r}")
        entries.append((target, attempt, kind))
    return tuple(entries)


def fault_for(index: int, label: str, attempt: int) -> Optional[str]:
    """The planned fault kind for this (job, attempt), or ``None``.

    Reads ``REPRO_FAULT_PLAN`` from the environment on every call so the
    plan crosses the process boundary to pool workers under both fork
    and spawn start methods.
    """
    plan = os.environ.get(FAULT_PLAN_ENV, "")
    if not plan:
        return None
    for target, when, kind in _parse_fault_plan(plan):
        if target != str(index) and target != label:
            continue
        if when != "*" and when != str(attempt):
            continue
        return kind
    return None


def _trip_fault(kind: str):
    """Execute one planned fault inside the worker.

    Returns a garbage payload for ``garbage``; the other kinds never
    return normally.
    """
    if kind == "crash":
        os._exit(23)  # hard process death: no cleanup, no exception
    if kind == "raise":
        raise FaultInjected("fault plan: injected failure")
    if kind == "hang":
        time.sleep(3600.0)  # interruptible: the in-worker alarm fires
        raise FaultInjected("fault plan: hang outlived the test")
    if kind == "hang-hard":
        # Mask the alarm so only the parent-side deadline can recover —
        # models a worker wedged in signal-blind native code.
        if hasattr(signal, "pthread_sigmask"):
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        time.sleep(3600.0)
        raise FaultInjected("fault plan: hard hang outlived the test")
    return ("garbage", "not a JobResult")


# ---------------------------------------------------------------------------
# Deterministic backoff
# ---------------------------------------------------------------------------


def backoff_delay(noise_seed: int, index: int, attempt: int,
                  base: float = BACKOFF_BASE_S,
                  cap: float = BACKOFF_MAX_S) -> float:
    """Exponential backoff with jitter that never consults the clock.

    The jitter stream is seeded from the job's identity (its noise seed
    and batch index) plus the attempt number, so two runs of the same
    batch back off identically — retried batches stay reproducible down
    to their scheduling delays.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    jitter = random.Random(f"{noise_seed}:{index}:{attempt}").random()
    return min(cap, base * (2.0 ** (attempt - 1)) * (1.0 + jitter))


# ---------------------------------------------------------------------------
# In-worker wall-clock guard
# ---------------------------------------------------------------------------


@contextmanager
def _wall_clock_guard(seconds: Optional[float]):
    """Raise :class:`JobTimeout` in the current thread after ``seconds``.

    Uses ``SIGALRM``, so it only arms on the main thread of a POSIX
    process — exactly where pool workers (and the serial path) run.
    Elsewhere it is a no-op and the parent-side deadline is the only
    wall-clock bound.
    """
    if not seconds or seconds <= 0 or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _alarm(signum, frame):
        raise JobTimeout(seconds)

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# Worker protocol
# ---------------------------------------------------------------------------


@dataclass
class _WorkerFailure:
    """A failed attempt, shipped home instead of an opaque traceback."""

    error_type: str
    message: str
    traceback: str
    wall_time_s: float
    pc: Optional[int] = None
    cycles: Optional[int] = None
    #: The original exception when it survives a pickle round-trip, so
    #: the ``raise`` policy re-raises the real type.
    exception: Optional[BaseException] = None

    @classmethod
    def from_exception(cls, exc: BaseException,
                       wall: float) -> "_WorkerFailure":
        record = cls(error_type=type(exc).__name__, message=str(exc),
                     traceback=traceback_module.format_exc(),
                     wall_time_s=wall)
        if isinstance(exc, CycleLimitExceeded):
            record.pc = exc.pc
            record.cycles = exc.cycles
        try:
            record.exception = pickle.loads(pickle.dumps(exc))
        except Exception:
            record.exception = None  # strings above still tell the story
        return record


def run_attempt(index: int, job, attempt: int,
                job_timeout: Optional[float]):
    """Execute one attempt of one job in the current process.

    Returns a :class:`~repro.harness.engine.JobResult`, a
    :class:`_WorkerFailure`, or (under a ``garbage`` fault) an arbitrary
    object the parent-side validation rejects.  Never raises for
    job-level errors — only for process-level disasters (a planned
    ``crash`` fault, ``KeyboardInterrupt``).
    """
    from .engine import execute_job

    start = time.perf_counter()
    try:
        with _wall_clock_guard(job_timeout):
            kind = fault_for(index, job.label, attempt)
            if kind is not None:
                return _trip_fault(kind)
            return execute_job(job)
    except Exception as exc:
        return _WorkerFailure.from_exception(
            exc, wall=time.perf_counter() - start)


def _pool_attempt(index: int, job, attempt: int,
                  job_timeout: Optional[float]):
    """Module-level pool entry point (must pickle by reference)."""
    return index, attempt, run_attempt(index, job, attempt, job_timeout)


# ---------------------------------------------------------------------------
# Graceful interrupt (SIGTERM/SIGINT)
# ---------------------------------------------------------------------------


@contextmanager
def _interrupt_guard():
    """Convert SIGTERM/SIGINT into a cooperative stop flag for the batch.

    Yields a zero-argument callable returning the received signal number
    (or ``None``); schedulers poll it between jobs/attempts.  Handlers
    only install on the main thread of the main interpreter — elsewhere
    (service executor threads, pool workers) this is a no-op and whoever
    owns the process keeps its own signal discipline.
    """
    if threading.current_thread() is not threading.main_thread():
        yield lambda: None
        return
    received: dict[str, int] = {}

    def _handler(signum, frame):
        received.setdefault("signum", signum)

    previous = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handler)
    except (ValueError, OSError):  # embedded interpreter oddities
        for signum, old in previous.items():
            signal.signal(signum, old)
        yield lambda: None
        return
    try:
        yield lambda: received.get("signum")
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


def _finalize_interrupt(state: "_BatchState", signum: int) -> None:
    """Orderly end of an interrupted batch: heartbeat, count, raise.

    The checkpoint journal needs no explicit flush — every record was
    written as one fsync'd frame at completion time.
    """
    counter = _obs_counter("batch_interrupts",
                           "batches stopped by SIGTERM/SIGINT")
    if counter is not None:
        counter.inc()
    reporter = obs_progress.current()
    if reporter is not None:
        reporter.heartbeat(force=True)
    logger.warning("batch interrupted (%d/%d done); checkpointed work "
                   "is preserved", state.done, state.total)
    raise BatchInterrupted(signum, done=state.done, total=state.total)


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------


def job_digest(job) -> bytes:
    """Stable digest of one job's full identity (program + run config)."""
    from .engine import CompileRequest

    digest = hashlib.sha256()
    program = job.program
    if isinstance(program, CompileRequest):
        digest.update(program.cache_key().encode())
    else:
        digest.update(hashlib.sha256(pickle.dumps(program)).digest())
    digest.update(repr((job.inputs, job.des_pair, job.noise_sigma,
                        job.noise_seed, job.label, job.collect_components,
                        job.operand_isolation, job.max_cycles)).encode())
    digest.update(repr(job.params).encode())
    return digest.digest()


def batch_digest(batch: Sequence) -> str:
    """Content digest of a whole batch — the checkpoint's identity key."""
    digest = hashlib.sha256()
    digest.update(str(len(batch)).encode())
    for job in batch:
        digest.update(job_digest(job))
    return digest.hexdigest()[:32]


class CheckpointJournal:
    """Append-only journal of completed jobs for one batch.

    The file holds consecutive pickle frames: a header
    ``{"schema", "digest", "total"}`` followed by record frames
    ``(crc32, payload)`` where ``payload`` pickles to
    ``(index, JobResult)``.  Appends write one complete frame and fsync,
    so a crash can only truncate the tail; the CRC additionally catches
    a corrupt frame in the *middle* of the file (bit rot, torn write on
    a weird filesystem).  The loader trusts records strictly up to the
    first bad frame — everything at and after it is recomputed, never
    returned as garbage.  A journal whose header schema or digest does
    not match the batch (older format, or the sweep's content changed)
    is discarded and rewritten, never partially reused.
    """

    def __init__(self, path: Union[str, Path], digest: str,
                 completed: dict[int, object], total: int):
        self.path = Path(path)
        self.digest = digest
        self.completed = completed
        self.total = total
        self._warned = False

    @classmethod
    def open(cls, path: Union[str, Path],
             batch: Sequence) -> "CheckpointJournal":
        digest = batch_digest(batch)
        path = Path(path)
        completed: dict[int, object] = {}
        fresh = True
        if path.exists():
            try:
                with path.open("rb") as stream:
                    header = pickle.load(stream)
                    if (isinstance(header, dict)
                            and header.get("schema") == _CHECKPOINT_SCHEMA
                            and header.get("digest") == digest):
                        fresh = False
                        while True:
                            try:
                                frame = pickle.load(stream)
                            except EOFError:
                                break
                            except (pickle.PickleError, ValueError,
                                    TypeError, AttributeError):
                                logger.warning(
                                    "checkpoint %s: unreadable frame after "
                                    "%d record(s) (truncated tail or "
                                    "corruption); recomputing the rest",
                                    path, len(completed))
                                break
                            record = cls._decode_frame(frame)
                            if record is None:
                                logger.warning(
                                    "checkpoint %s: CRC mismatch after %d "
                                    "record(s); trusting nothing past it",
                                    path, len(completed))
                                break
                            index, result = record
                            if isinstance(index, int) \
                                    and 0 <= index < len(batch):
                                completed[index] = result
                    else:
                        logger.warning(
                            "checkpoint %s: schema or batch digest "
                            "mismatch (older format or stale sweep "
                            "definition); starting fresh", path)
            except (OSError, pickle.PickleError, EOFError):
                logger.warning("checkpoint %s: unreadable; starting fresh",
                               path)
        if fresh:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("wb") as stream:
                pickle.dump({"schema": _CHECKPOINT_SCHEMA, "digest": digest,
                             "total": len(batch)}, stream)
                stream.flush()
                os.fsync(stream.fileno())
        return cls(path, digest, completed, total=len(batch))

    @staticmethod
    def _decode_frame(frame):
        """``(index, result)`` from a v2 frame, or ``None`` if corrupt.

        The CRC is checked *before* the payload is unpickled, so a
        flipped bit can only ever be rejected — never deserialized into
        a plausible-looking result.
        """
        if (not isinstance(frame, tuple) or len(frame) != 2
                or not isinstance(frame[1], (bytes, bytearray))
                or zlib.crc32(frame[1]) != frame[0]):
            return None
        try:
            record = pickle.loads(frame[1])
        except (pickle.PickleError, ValueError, TypeError,
                AttributeError, EOFError):
            return None
        if not isinstance(record, tuple) or len(record) != 2:
            return None
        return record

    @staticmethod
    def _encode_frame(index: int, result) -> bytes:
        payload = pickle.dumps((index, result))
        return pickle.dumps((zlib.crc32(payload), payload))

    def record(self, index: int, result) -> None:
        """Append one completed job; best-effort (never fails the batch)."""
        if index in self.completed:
            return
        try:
            frame = self._encode_frame(index, result)
            with self.path.open("ab") as stream:
                stream.write(frame)
                stream.flush()
                os.fsync(stream.fileno())
            self.completed[index] = result
        except (OSError, pickle.PickleError) as error:
            if not self._warned:
                logger.warning("checkpoint %s: append failed (%s); "
                               "resume will recompute", self.path, error)
                self._warned = True


# ---------------------------------------------------------------------------
# Batch executor
# ---------------------------------------------------------------------------


def _obs_counter(name: str, help_text: str = ""):
    return obs.counter(name, help_text) if obs.enabled() else None


class _BatchState:
    """Bookkeeping shared by the serial and pool schedulers."""

    def __init__(self, batch: Sequence, progress, failure_policy: str,
                 max_attempts: int, job_timeout: Optional[float],
                 journal: Optional[CheckpointJournal]):
        self.batch = list(batch)
        self.total = len(self.batch)
        self.progress = progress
        self.failure_policy = failure_policy
        self.max_attempts = max_attempts
        self.job_timeout = job_timeout
        self.journal = journal
        self.slots: list = [None] * self.total
        self.done = 0
        #: Zero-arg callable → received signal number or ``None``;
        #: installed by :func:`execute_batch`'s interrupt guard.
        self.interrupt_check: Callable[[], Optional[int]] = lambda: None

    def skip_completed(self) -> list[int]:
        """Fill slots from the journal; returns the indices still to run."""
        if self.journal and self.journal.completed:
            for index, result in self.journal.completed.items():
                self.slots[index] = result
                self.done += 1
            if obs.enabled():
                obs.counter("checkpoint_jobs_skipped",
                            "jobs resumed from a checkpoint journal") \
                    .inc(self.done)
            if self.progress is not None:
                self.progress(self.done, self.total)
        return [index for index in range(self.total)
                if self.slots[index] is None]

    def succeed(self, index: int, result) -> None:
        self.slots[index] = result
        self.done += 1
        if self.journal is not None:
            self.journal.record(index, result)
            if obs.enabled():
                obs.counter("checkpoint_jobs_recorded",
                            "jobs appended to a checkpoint journal").inc()
        if self.progress is not None:
            self.progress(self.done, self.total)

    def fail(self, index: int, attempt: int, failure) -> None:
        """Finalize a job as failed (attempt budget exhausted)."""
        job = self.batch[index]
        if isinstance(failure, _WorkerFailure):
            record = JobFailure(label=job.label, index=index,
                                error_type=failure.error_type,
                                message=failure.message, attempts=attempt,
                                wall_time_s=failure.wall_time_s,
                                pc=failure.pc, cycles=failure.cycles,
                                traceback=failure.traceback)
        else:
            record = failure  # pre-built JobFailure (crash/timeout paths)
        counter = _obs_counter("job_failures", "jobs that exhausted their "
                               "attempt budget, by error type")
        if counter is not None:
            counter.inc(error=record.error_type)
        reporter = obs_progress.current()
        if reporter is not None:
            reporter.note_failure()
        if self.failure_policy == "raise":
            exception = getattr(failure, "exception", None) \
                if isinstance(failure, _WorkerFailure) else None
            if exception is not None:
                raise exception
            raise RuntimeError(
                f"job {record.index} ({record.label or '<unlabeled>'}) "
                f"failed after {record.attempts} attempt(s): "
                f"{record.error_type}: {record.message}")
        self.slots[index] = record
        self.done += 1
        if self.progress is not None:
            self.progress(self.done, self.total)

    def should_retry(self, attempt: int) -> bool:
        return attempt < self.max_attempts

    def note_retry(self) -> None:
        counter = _obs_counter("job_retries",
                               "failed attempts that were retried")
        if counter is not None:
            counter.inc()
        reporter = obs_progress.current()
        if reporter is not None:
            reporter.note_retry()


def validate_batch_options(failure_policy: str, retries: int) -> None:
    """Reject invalid batch options before any job executes (shared by
    :func:`execute_batch` and the batch-native dispatch that bypasses it).
    """
    if failure_policy not in ("raise", "collect", "retry"):
        raise ValueError(f"unknown failure_policy {failure_policy!r}; "
                         "choose 'raise', 'collect', or 'retry'")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")


def execute_batch(batch: Sequence, jobs: int = 1, progress=None,
                  failure_policy: str = "raise", retries: int = 2,
                  job_timeout: Optional[float] = None,
                  checkpoint: Optional[Union[str, Path]] = None) -> list:
    """Run a batch under a failure policy; the engine's implementation.

    Returns one entry per job in submission order: a ``JobResult``, or a
    :class:`JobFailure` in that job's slot under ``collect``/``retry``
    when it ultimately failed.  ``raise`` re-raises the first failure
    (seed-compatible) after cancelling pending work.

    On the main thread, SIGTERM/SIGINT stop the batch gracefully:
    workers are killed, checkpointed results stay on disk, and
    :class:`BatchInterrupted` is raised instead of the process dying
    mid-write.
    """
    validate_batch_options(failure_policy, retries)
    max_attempts = 1 + (retries if failure_policy == "retry" else 0)
    journal = CheckpointJournal.open(checkpoint, batch) \
        if checkpoint is not None else None
    state = _BatchState(batch, progress, failure_policy, max_attempts,
                        job_timeout, journal)
    pending = state.skip_completed()
    if not pending:
        return state.slots
    with _interrupt_guard() as check:
        state.interrupt_check = check
        if jobs <= 1 or len(pending) <= 1:
            _run_serial(state, pending)
        else:
            _run_pool(state, pending, jobs)
    return state.slots


def _run_serial(state: _BatchState, pending: Sequence[int]) -> None:
    """In-process execution with the same retry/timeout discipline."""
    for index in pending:
        _serial_from_attempt(state, index, 1)


def _is_result(outcome) -> bool:
    from .engine import JobResult

    return isinstance(outcome, JobResult)


def _coerce_failure(outcome) -> _WorkerFailure:
    """Anything that is not a JobResult/_WorkerFailure is garbage."""
    if isinstance(outcome, _WorkerFailure):
        return outcome
    return _WorkerFailure(error_type="GarbageResult",
                          message=f"worker returned {type(outcome).__name__}"
                                  f" instead of JobResult: {outcome!r:.120}",
                          traceback="", wall_time_s=0.0)


# -- process-pool scheduler -------------------------------------------------


def _make_pool(workers: int):
    """Create a pool, or ``None`` where the platform refuses one."""
    from concurrent.futures import ProcessPoolExecutor

    try:
        return ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, NotImplementedError,
            PermissionError) as error:
        logger.warning("process pool unavailable (%s); degrading to "
                       "serial execution", error)
        counter = _obs_counter("pool_serial_degradations",
                               "batches that fell back to serial execution")
        if counter is not None:
            counter.inc()
        return None


#: Pristine reference for the shared pool's factory-identity check:
#: a monkeypatched ``_make_pool`` no longer matches, so injected pool
#: refusals bypass the warm shared pool instead of being masked by it.
_DEFAULT_POOL_FACTORY = _make_pool


def _kill_pool(pool) -> None:
    """Forcibly stop a pool whose worker is wedged past its deadline."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pool(state: _BatchState, pending: Sequence[int],
              jobs: int) -> None:
    """Windowed pool scheduler with deadlines, retries, and recovery.

    At most ``workers`` jobs are in flight, so a submitted job starts
    (nearly) immediately and its parent-side deadline is measured from
    real start, not batch submission.  The deadline is the in-worker
    alarm's backstop: it fires ``_DEADLINE_GRACE`` later and handles
    workers the alarm cannot reach (hard hangs in native code).
    """
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures.process import BrokenProcessPool

    from . import pool as pool_module

    workers = min(jobs, len(pending))
    # Lease the process-wide warm pool instead of forking a fresh
    # executor per batch; the lease duck-types submit/kill/rebuild so
    # every recovery path below is unchanged.  ``_make_pool`` is passed
    # as the factory so a monkeypatched refusal still degrades to
    # serial through a private lease.
    pool = pool_module.acquire_lease(workers, factory=_make_pool)
    if pool is None:
        _run_serial(state, pending)
        return
    #: (ready_time, index, attempt); ready_time is monotonic seconds.
    queue: deque = deque((0.0, index, 1) for index in pending)
    inflight: dict = {}  # future -> (index, attempt, start_monotonic)
    rebuilds_without_progress = 0
    grace = max(1.0, 0.25 * state.job_timeout) if state.job_timeout else None

    def _requeue(index: int, attempt: int, delay: float) -> None:
        queue.append((time.monotonic() + delay, index, attempt))

    def _handle_failure(index: int, attempt: int, failure) -> None:
        job = state.batch[index]
        if state.should_retry(attempt):
            state.note_retry()
            _requeue(index, attempt + 1,
                     backoff_delay(job.noise_seed, index, attempt))
        else:
            state.fail(index, attempt, failure)

    def _broken_pool(error) -> None:
        """All in-flight work died with the pool; reschedule or finalize."""
        nonlocal pool, rebuilds_without_progress
        counter = _obs_counter("pool_rebuilds",
                               "process pools rebuilt after breaking")
        if counter is not None:
            counter.inc()
        casualties = list(inflight.values())
        inflight.clear()
        # kill(), not a bare shutdown(wait=False): a broken pool can
        # strand its surviving workers blocked on the call queue, and the
        # non-daemon executor manager thread then hangs interpreter exit.
        pool.kill()
        if state.failure_policy == "raise":
            raise error
        for index, attempt, start in casualties:
            failure = JobFailure(
                label=state.batch[index].label, index=index,
                error_type="WorkerCrash",
                message=f"process pool broke mid-job: {error}",
                attempts=attempt,
                wall_time_s=time.monotonic() - start)
            _handle_failure(index, attempt, failure)
        rebuilds_without_progress += 1
        if rebuilds_without_progress > 1:
            logger.warning("process pool broke twice without completing a "
                           "job; degrading to serial execution")
            counter = _obs_counter("pool_serial_degradations")
            if counter is not None:
                counter.inc()
            pool.release()
            pool = None
        elif not pool.rebuild():
            pool.release()
            pool = None

    try:
        while queue or inflight:
            signum = state.interrupt_check()
            if signum is not None:
                if pool is not None:
                    pool.kill()
                    pool.release()
                    pool = None
                _finalize_interrupt(state, signum)
            if pool is None:
                # Degraded: drain everything still queued serially.
                remaining = sorted(index for _, index, _ in queue)
                attempts = {index: attempt for _, index, attempt in queue}
                queue.clear()
                for index in remaining:
                    # Serial attempts restart the per-job budget from the
                    # recorded attempt, preserving the bound.
                    _serial_from_attempt(state, index, attempts[index])
                return
            now = time.monotonic()
            while queue and len(inflight) < workers and queue[0][0] <= now:
                ready, index, attempt = queue.popleft()
                try:
                    future = pool.submit(_pool_attempt, index,
                                         state.batch[index], attempt,
                                         state.job_timeout)
                except BrokenProcessPool as error:
                    queue.appendleft((ready, index, attempt))
                    _broken_pool(error)
                    break
                inflight[future] = (index, attempt, time.monotonic())
            if not inflight:
                if queue:
                    delay = max(0.0, min(entry[0] for entry in queue)
                                - time.monotonic())
                    time.sleep(min(delay, 0.25))
                continue
            tick = 0.25
            if grace is not None:
                next_deadline = min(
                    start + state.job_timeout + grace
                    for _, _, start in inflight.values())
                tick = min(tick, max(0.01, next_deadline - time.monotonic()))
            completed, _ = wait(set(inflight), timeout=tick,
                                return_when=FIRST_COMPLETED)
            for future in completed:
                index, attempt, start = inflight.pop(future)
                try:
                    _, _, outcome = future.result()
                except BrokenProcessPool as error:
                    inflight[future] = (index, attempt, start)
                    _broken_pool(error)
                    break
                except Exception as exc:  # result deserialization, ...
                    _handle_failure(index, attempt,
                                    _WorkerFailure.from_exception(
                                        exc, wall=time.monotonic() - start))
                    continue
                if _is_result(outcome):
                    rebuilds_without_progress = 0
                    state.succeed(index, outcome)
                else:
                    _handle_failure(index, attempt, _coerce_failure(outcome))
            if grace is not None and inflight:
                overdue = [
                    (future, entry) for future, entry in inflight.items()
                    if time.monotonic() - entry[2]
                    > state.job_timeout + grace]
                if overdue:
                    pool = _reap_overdue(state, pool, workers, inflight,
                                         overdue, _handle_failure, _requeue)
    finally:
        if pool is not None:
            pool.release()


def _reap_overdue(state: _BatchState, pool, workers: int, inflight: dict,
                  overdue: list, _handle_failure, _requeue):
    """Kill a pool whose worker blew past the parent-side deadline.

    The overdue job(s) count a failed attempt; innocent in-flight jobs
    are requeued at their current attempt (they did nothing wrong and
    re-running them is free of side effects).
    """
    counter = _obs_counter("job_timeouts",
                           "jobs killed by the parent-side deadline")
    overdue_futures = {future for future, _ in overdue}
    for future, (index, attempt, start) in overdue:
        if counter is not None:
            counter.inc()
        failure = JobFailure(
            label=state.batch[index].label, index=index,
            error_type="JobTimeout",
            message=f"job exceeded wall-clock timeout of "
                    f"{state.job_timeout}s (parent-side deadline; worker "
                    "killed)",
            attempts=attempt, wall_time_s=time.monotonic() - start)
        if state.failure_policy == "raise":
            pool.kill()
            raise JobTimeout(state.job_timeout)
        _handle_failure(index, attempt, failure)
    for future, (index, attempt, start) in list(inflight.items()):
        if future not in overdue_futures:
            _requeue(index, attempt, 0.0)
    inflight.clear()
    pool.kill()
    rebuild_counter = _obs_counter("pool_rebuilds",
                                   "process pools rebuilt after breaking")
    if rebuild_counter is not None:
        rebuild_counter.inc()
    if pool.rebuild():
        return pool
    pool.release()
    return None


def _serial_from_attempt(state: _BatchState, index: int,
                         first_attempt: int) -> None:
    """Serial retry loop starting at a given attempt number."""
    job = state.batch[index]
    attempt = max(1, first_attempt)
    while True:
        signum = state.interrupt_check()
        if signum is not None:
            _finalize_interrupt(state, signum)
        outcome = run_attempt(index, job, attempt, state.job_timeout)
        if _is_result(outcome):
            state.succeed(index, outcome)
            return
        failure = _coerce_failure(outcome)
        if state.should_retry(attempt):
            state.note_retry()
            time.sleep(backoff_delay(job.noise_seed, index, attempt))
            attempt += 1
            continue
        state.fail(index, attempt, failure)
        return
