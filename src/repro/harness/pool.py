"""Persistent shared worker pool: warm process workers across batches.

Every ``run_jobs`` call used to build and tear down a fresh
:class:`~concurrent.futures.ProcessPoolExecutor`, so a long-lived
caller (the ``repro serve`` daemon, a chunked ``run_stream`` campaign)
paid fork + import + cache-warm costs on every chunk of every request.
This module keeps **one pool per process** alive between batches and
hands it out through short-lived :class:`PoolLease` objects:

* **Exclusive leasing** — at most one batch holds the shared executor
  at a time, so a wedged-pool kill or a ``BrokenProcessPool`` rebuild
  only ever destroys the leaseholder's own workers; concurrent batches
  overflow onto private single-use executors and cannot be harmed by a
  neighbor's failures.
* **Generation rebuilds** — ``lease.kill()`` marks the current worker
  generation dead; the next ``lease.rebuild()`` (or the next acquire)
  forks a fresh generation.  The resilience scheduler's recovery
  machinery (parent-side deadline reaping, broken-pool resubmission,
  serial degradation) runs unchanged on top of the lease.
* **Environment fingerprinting** — workers are forked processes and
  never see the parent's *later* environment changes, so the pool
  remembers the fingerprint (:data:`FINGERPRINT_KEYS`: fault plan,
  compile-cache dir, engine selection, observability flags) it was
  built under and rebuilds when an acquire arrives under a different
  one.  A fingerprint change while the pool is leased yields a private
  executor instead; the shared generation is never poisoned.
* **Warm initializer** — new workers import the simulation stack and
  open the process-wide compile cache *before* the first job arrives,
  so first-job latency is an IPC round-trip, not an import storm.
* **Liveness probes + stats** — :meth:`SharedWorkerPool.probe` runs a
  trivial task through an idle pool and quarantines a generation that
  cannot answer; :meth:`SharedWorkerPool.stats` feeds service
  manifests (lease/rebuild accounting, stranded-worker count).
* **Deterministic shutdown** — :func:`shutdown_shared_pool` waits for
  the active lease (bounded by a grace period), joins every worker,
  and reports how many refused to die (``stranded_workers``, expected
  0), so a drain manifest can prove the daemon leaked nothing.
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
import time
from typing import Callable, Optional

from .. import obs

logger = logging.getLogger("repro.harness.pool")

#: Environment variables a forked worker snapshots at birth.  An acquire
#: whose current environment disagrees with the generation's recorded
#: fingerprint cannot safely reuse those workers (fault plans, cache
#: directories, and engine selection are all read inside the worker).
FINGERPRINT_KEYS = ("REPRO_FAULT_PLAN", "REPRO_COMPILE_CACHE_DIR",
                    "REPRO_ENGINE", "REPRO_OBS", "REPRO_ATTRIBUTION")

_PROBE_TOKEN = "pool-probe-ok"

#: Default grace (seconds) a shutdown grants the active lease.
DEFAULT_SHUTDOWN_GRACE_S = 30.0


def environment_fingerprint() -> tuple:
    """The parent-side environment snapshot a worker generation inherits."""
    return tuple(os.environ.get(key) for key in FINGERPRINT_KEYS)


def _orphan_watchdog(birth_ppid: int) -> None:  # pragma: no cover
    """Exit the worker once its parent process disappears.

    Warm workers are long-lived, so a SIGKILL'd parent orphans them
    mid-task: siblings hold each other's queue-pipe write ends, so no
    EOF ever reaches the call-queue read and the worker wedges forever
    while still holding the parent's stdout/stderr.  Polling the ppid
    is the only reliable signal — PR_SET_PDEATHSIG tracks the forking
    *thread*, which in ProcessPoolExecutor is a transient submit
    thread.
    """
    while True:
        time.sleep(1.0)
        if os.getppid() != birth_ppid:
            os._exit(2)


def _warm_worker() -> None:  # pragma: no cover - runs inside workers
    """Pre-warm a freshly forked worker: imports + compile-cache open.

    Defensive by design — a warm-up failure must degrade to a cold
    first job, never to a broken pool.
    """
    try:
        watchdog = threading.Thread(target=_orphan_watchdog,
                                    args=(os.getppid(),),
                                    name="repro-orphan-watchdog",
                                    daemon=True)
        watchdog.start()
    except Exception:
        pass
    try:
        from . import engine
        from ..machine import engines, fastpath, vector  # noqa: F401

        engine.default_cache()
    except Exception:
        pass


def _probe_task() -> str:  # pragma: no cover - runs inside workers
    return _PROBE_TOKEN


def _kill_executor(executor) -> None:
    """Forcibly stop an executor whose workers may be wedged."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def _build_executor(workers: int):
    """Fork a warm executor, or ``None`` where the platform refuses one."""
    from concurrent.futures import ProcessPoolExecutor

    try:
        return ProcessPoolExecutor(max_workers=workers,
                                   initializer=_warm_worker)
    except (OSError, ValueError, NotImplementedError,
            PermissionError) as error:
        logger.warning("shared process pool unavailable (%s); degrading "
                       "to serial execution", error)
        if obs.enabled():
            obs.counter("pool_serial_degradations",
                        "batches that fell back to serial execution").inc()
        return None


class PoolLease:
    """A batch's handle on a pool: submit, kill, rebuild, release.

    Duck-types the slice of :class:`ProcessPoolExecutor` the resilience
    scheduler needs, while routing destructive operations through the
    shared pool so one batch's recovery cannot strand its neighbors.
    A *private* lease owns a single-use executor (overflow, custom
    factory, post-shutdown work) and behaves exactly like the historic
    per-batch pool.
    """

    def __init__(self, pool: "SharedWorkerPool", executor, workers: int,
                 factory: Optional[Callable] = None, private: bool = False):
        self._pool = pool
        self._executor = executor
        self.workers = workers
        self._factory = factory
        self.private = private
        self._released = False
        self._futures: list = []

    def submit(self, fn, *args):
        executor = self._executor
        if executor is None:
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool("pool lease has no live executor")
        future = executor.submit(fn, *args)
        self._futures.append(future)
        return future

    def kill(self) -> None:
        """Kill this lease's worker generation (wedged or broken)."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if self.private:
            _kill_executor(executor)
        else:
            self._pool._kill_generation(executor)
        self._futures.clear()

    def rebuild(self) -> bool:
        """Fork a fresh generation after :meth:`kill`; False → go serial."""
        if self.private:
            factory = self._factory or _build_executor
            self._executor = factory(self.workers)
        else:
            self._executor = self._pool._rebuild_for(self, self.workers)
        self._futures.clear()
        return self._executor is not None

    def release(self) -> None:
        """Return the pool.  Idempotent; called exactly once per batch."""
        if self._released:
            return
        self._released = True
        pending = [f for f in self._futures if not f.done()]
        for future in pending:
            future.cancel()
        stragglers = [f for f in pending
                      if not (f.done() or f.cancelled())]
        if stragglers and self._executor is not None:
            # A batch abandoned running work (raise-policy failure) —
            # retire the generation rather than hand a busy executor to
            # the next lease or block the release waiting on it.
            self.kill()
        self._futures.clear()
        executor, self._executor = self._executor, None
        if self.private:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
        else:
            self._pool._release(self)


class SharedWorkerPool:
    """The process-wide pool of warm simulation workers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._executor = None
        self._workers = 0
        self._fingerprint: Optional[tuple] = None
        self._generation = 0
        self._dead = False
        self._active: Optional[PoolLease] = None
        self._shutdown = False
        self._stats = {"leases": 0, "shared_leases": 0, "private_leases": 0,
                       "warm_acquires": 0, "cold_builds": 0, "rebuilds": 0,
                       "fingerprint_rebuilds": 0, "probe_failures": 0,
                       "stranded_workers": 0}

    # -- leasing ------------------------------------------------------------

    def acquire(self, workers: int,
                factory: Optional[Callable] = None) -> Optional[PoolLease]:
        """Lease the warm pool, or a private executor when it is busy.

        ``factory`` other than the canonical resilience pool factory
        (tests monkeypatch it) always yields a private lease built by
        that factory, so the shared pool never masks an injected
        platform refusal.  Returns ``None`` when no pool can be built
        at all — the caller degrades to serial execution.
        """
        workers = max(1, int(workers))
        if factory is not None and not _is_canonical_factory(factory):
            executor = factory(workers)
            if executor is None:
                return None
            with self._lock:
                self._stats["leases"] += 1
                self._stats["private_leases"] += 1
            return PoolLease(self, executor, workers, factory=factory,
                             private=True)
        with self._lock:
            self._stats["leases"] += 1
            if not self._shutdown and self._active is None:
                fingerprint = environment_fingerprint()
                stale = (self._executor is None or self._dead
                         or self._workers < workers
                         or self._fingerprint != fingerprint)
                if stale:
                    if (self._executor is not None and not self._dead
                            and self._workers >= workers):
                        self._stats["fingerprint_rebuilds"] += 1
                    self._retire_locked()
                    executor = self._build_locked(
                        max(workers, self._workers))
                else:
                    executor = self._executor
                    self._stats["warm_acquires"] += 1
                if executor is None:
                    return None
                lease = PoolLease(self, executor, workers, private=False)
                self._active = lease
                self._stats["shared_leases"] += 1
                return lease
            self._stats["private_leases"] += 1
        executor = _build_executor(workers)
        if executor is None:
            return None
        return PoolLease(self, executor, workers, private=True)

    def _release(self, lease: PoolLease) -> None:
        with self._cv:
            if self._active is lease:
                self._active = None
                if self._dead or self._shutdown:
                    self._retire_locked()
                self._cv.notify_all()

    def _kill_generation(self, executor) -> None:
        with self._lock:
            if self._executor is executor:
                self._dead = True
        _kill_executor(executor)

    def _rebuild_for(self, lease: PoolLease, workers: int):
        with self._lock:
            if self._active is not lease or self._shutdown:
                return None
            self._retire_locked()
            return self._build_locked(max(workers, self._workers),
                                      rebuild=True)

    # -- internals (self._lock held) ----------------------------------------

    def _build_locked(self, workers: int, rebuild: bool = False):
        executor = _build_executor(workers)
        if executor is None:
            return None
        self._executor = executor
        self._workers = workers
        self._fingerprint = environment_fingerprint()
        self._generation += 1
        self._dead = False
        self._stats["rebuilds" if rebuild else "cold_builds"] += 1
        return executor

    def _retire_locked(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if self._dead:
            _kill_executor(executor)
        else:
            executor.shutdown(wait=False, cancel_futures=True)
        self._dead = False

    # -- health -------------------------------------------------------------

    def probe(self, timeout_s: float = 10.0) -> bool:
        """Liveness: can an idle pool answer a trivial task in time?

        A leased pool is presumed live (its batch is making progress
        under its own deadlines); a probe failure quarantines the
        generation so the next acquire rebuilds instead of inheriting
        wedged workers.
        """
        with self._lock:
            if self._shutdown:
                return False
            if self._active is not None:
                return True
            executor = self._executor
        if executor is None:
            return True  # nothing built yet; next acquire forks fresh
        try:
            future = executor.submit(_probe_task)
            return future.result(timeout=timeout_s) == _PROBE_TOKEN
        except Exception:
            with self._lock:
                self._stats["probe_failures"] += 1
                if self._executor is executor:
                    self._dead = True
            return False

    def stats(self) -> dict:
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        return dict(self._stats, workers=self._workers,
                    generation=self._generation,
                    live=self._executor is not None and not self._dead,
                    leased=self._active is not None,
                    shut_down=self._shutdown)

    # -- shutdown -----------------------------------------------------------

    def shutdown(self, grace_s: float = DEFAULT_SHUTDOWN_GRACE_S) -> dict:
        """Drain leases, join every worker, report stranded processes.

        Idempotent.  Waits up to ``grace_s`` for the active lease to
        release; a lease that outlives the grace has its generation
        killed (counted, never leaked).  Returns the final stats dict —
        ``stranded_workers`` is the number of worker processes still
        alive after the join, and must be 0 for a clean drain.
        """
        with self._cv:
            if self._shutdown:
                # _lock is not reentrant: read the stats in place
                # rather than deadlocking on self.stats().
                return self._stats_locked()
            self._shutdown = True
            deadline = time.monotonic() + max(0.0, grace_s)
            while self._active is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(min(0.25, remaining))
            forced = self._active is not None
            self._active = None
            executor, self._executor = self._executor, None
            dead = self._dead
            self._dead = False
        stranded = 0
        if executor is not None:
            if forced or dead:
                _kill_executor(executor)
            executor.shutdown(wait=True, cancel_futures=True)
            processes = getattr(executor, "_processes", None) or {}
            stranded = sum(1 for process in processes.values()
                           if process.is_alive())
        with self._lock:
            self._stats["stranded_workers"] = stranded
            if forced:
                logger.warning("shared pool shutdown forced past a live "
                               "lease after %.1fs grace", grace_s)
        return self.stats()


def _is_canonical_factory(factory: Callable) -> bool:
    # Compare against the pristine factory captured at definition time —
    # NOT the live ``resilience._make_pool`` attribute, which tests
    # monkeypatch precisely to force the degraded path.
    from . import resilience

    return factory is getattr(resilience, "_DEFAULT_POOL_FACTORY", None)


# -- process-wide singleton -------------------------------------------------

_POOL: Optional[SharedWorkerPool] = None
_POOL_LOCK = threading.Lock()


def shared_pool() -> SharedWorkerPool:
    """The process-wide pool, created on first use."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = SharedWorkerPool()
            atexit.register(_shutdown_at_exit)
        return _POOL


def acquire_lease(workers: int,
                  factory: Optional[Callable] = None) -> Optional[PoolLease]:
    """Lease workers for one batch; ``None`` → degrade to serial."""
    return shared_pool().acquire(workers, factory=factory)


def pool_stats() -> Optional[dict]:
    """Stats for manifests, or ``None`` if no pool was ever created."""
    with _POOL_LOCK:
        pool = _POOL
    return pool.stats() if pool is not None else None


def probe(timeout_s: float = 10.0) -> bool:
    """Liveness-probe the shared pool (True when no pool exists yet)."""
    with _POOL_LOCK:
        pool = _POOL
    return pool.probe(timeout_s) if pool is not None else True


def shutdown_shared_pool(
        grace_s: float = DEFAULT_SHUTDOWN_GRACE_S) -> Optional[dict]:
    """Deterministically drain and join the shared pool, if one exists."""
    with _POOL_LOCK:
        pool = _POOL
    return pool.shutdown(grace_s) if pool is not None else None


def reset_shared_pool() -> None:
    """Tear down the singleton (tests); the next use builds a fresh one."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(grace_s=5.0)


def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    try:
        shutdown_shared_pool(grace_s=5.0)
    except Exception:
        pass
