"""Run programs under the energy tracker and capture traces."""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..energy.trace import EnergyTrace
from ..energy.tracker import EnergyTracker
from ..isa.program import Program
from ..machine import engines, fastpath
from ..machine.cpu import CPU
from ..machine.exceptions import CycleLimitExceeded
from ..programs.workloads import key_words, plaintext_words


class RunResult:
    """A finished simulation: CPU state plus its energy trace."""

    def __init__(self, cpu: CPU, tracker: EnergyTracker, label: str = "",
                 engine: str = "reference"):
        self.cpu = cpu
        self.tracker = tracker
        #: Engine that produced the trace: a registry name (``"fast"``,
        #: ``"vector"``, ``"reference"``) or ``"<name>-fallback"`` when the
        #: requested engine declined the run (recorded schedule diverged or
        #: the program fell outside the engine's model) and the trace was
        #: re-run down the registry's fallback chain.
        self.engine = engine
        #: Per-run attribution sink (None unless attribution was enabled).
        self.attribution = tracker.attribution
        self.trace = EnergyTrace.from_tracker(tracker,
                                              markers=cpu.pipeline.markers,
                                              label=label)

    @property
    def cycles(self) -> int:
        return self.cpu.cycles

    @property
    def total_uj(self) -> float:
        return self.tracker.total_energy_uj

    @property
    def average_pj(self) -> float:
        return self.tracker.average_energy_pj


def run_with_trace(program: Program,
                   inputs: Optional[dict[str, list[int]]] = None,
                   params: EnergyParams = DEFAULT_PARAMS,
                   collect_components: bool = False,
                   label: str = "",
                   max_cycles: int = 50_000_000,
                   noise_sigma: float = 0.0,
                   noise_seed: int = 0,
                   operand_isolation: bool = True,
                   stream=None, keep_trace: bool = True,
                   engine: Optional[str] = None) -> RunResult:
    """Assembled program + symbol inputs -> executed RunResult with trace.

    ``engine`` selects the execution engine from the registry
    (:mod:`repro.machine.engines`): ``"fast"`` replays the program's
    recorded cycle schedule (bit-identical output; see
    :mod:`repro.machine.fastpath`), ``"vector"`` replays it through the
    batch-native NumPy engine (also bit-identical; see
    :mod:`repro.machine.vector`), ``"reference"`` steps the five-stage
    pipeline cycle by cycle.  ``None`` resolves ``$REPRO_ENGINE`` and
    defaults to ``"fast"``.  A run whose engine declines it — the recorded
    control path diverges (input-dependent branching) or the program falls
    outside the engine's model — is transparently re-run with fresh state
    down the registry's fallback chain (``vector`` -> ``fast`` ->
    ``reference``); nothing from an abandoned attempt leaks into the
    result, and the final :attr:`RunResult.engine` is labeled
    ``"<requested>-fallback"``.  Streaming runs (``stream`` set) always
    use the reference engine so a mid-run divergence can never leave a
    partially written trace behind; attribution runs substitute each
    engine's declared ``hooked`` engine, since replaying per-cycle hooks
    is what attribution needs.

    When the observability sink is enabled (:func:`repro.obs.enabled`),
    the run executes under an ``execute`` span, collects the dynamic
    instruction mix, and publishes pipeline/energy metrics to the current
    registry; with the sink disabled (the default) the simulated path is
    identical to an uninstrumented runner.

    When attribution is enabled (:func:`repro.obs.attribution_enabled`),
    the tracker additionally books every energy increment to its
    (pc, unit, class, secure) provenance key; the per-run sink is
    annotated with the program's debug info and merged into the current
    observability context.

    ``stream`` is an optional bounded-memory per-cycle trace writer
    (:class:`~repro.harness.io.StreamingTraceWriter`); pass
    ``keep_trace=False`` alongside it to drop the in-memory trace
    entirely (the returned result then has an empty energy vector).
    """
    resolved = engines.resolve(engine)
    if stream is not None:
        resolved = "reference"
    elif obs.attribution_enabled():
        hooked = engines.get(resolved).hooked
        if hooked is not None:
            resolved = hooked
    requested = resolved
    engine_label = None
    while True:
        try:
            return _run_with_trace_once(
                program, inputs, params, collect_components, label,
                max_cycles, noise_sigma, noise_seed, operand_isolation,
                stream, keep_trace, engine=resolved,
                engine_label=engine_label)
        except fastpath.ScheduleFallback:
            fallback = engines.get(resolved).fallback
            if fallback is None:
                raise
            if obs.enabled():
                obs.counter("engine_fallbacks",
                            "runs served by a fallback engine instead of "
                            "the requested one").inc()
            resolved = fallback
            engine_label = f"{requested}-fallback"


def _run_with_trace_once(program, inputs, params, collect_components,
                         label, max_cycles, noise_sigma, noise_seed,
                         operand_isolation, stream, keep_trace, *,
                         engine: str,
                         engine_label: Optional[str] = None) -> RunResult:
    """One execution attempt on one engine, with fresh tracker/CPU state.

    The engine's factory or ``run`` may raise :class:`~repro.machine
    .fastpath.ScheduleFallback` at any point before completion; the
    abandoned tracker, memory, and attribution sink are discarded
    unmerged, so the caller's retry starts from scratch.  ``engine_label``
    overrides the engine name recorded on the result and the execute span
    (used to tag fallback re-runs with the originally requested engine).
    """
    observing = obs.enabled()
    attribution = obs.AttributionSink() if obs.attribution_enabled() \
        else None
    tracker = EnergyTracker(params, collect_components=collect_components,
                            noise_sigma=noise_sigma, noise_seed=noise_seed,
                            attribution=attribution, stream=stream,
                            keep_trace=keep_trace)
    cpu = engines.get(engine).factory(program, tracker,
                                      operand_isolation=operand_isolation,
                                      collect_mix=observing,
                                      max_cycles=max_cycles)
    if inputs:
        for symbol, words in inputs.items():
            cpu.write_symbol_words(symbol, words)
    reported = engine_label if engine_label is not None else engine
    with obs.span("execute", label=label, engine=reported):
        try:
            cpu.run(max_cycles=max_cycles)
        except CycleLimitExceeded as overrun:
            # Tag the overrun with the job it belongs to; batch failure
            # records surface the label alongside pc/cycle context.
            overrun.label = label
            raise
    if observing:
        _publish_run_metrics(cpu, tracker)
    if attribution is not None:
        attribution.annotate(program)
        obs.attribution().merge(attribution)
    return RunResult(cpu, tracker, label=label, engine=reported)


def _publish_run_metrics(cpu: CPU, tracker: EnergyTracker) -> None:
    """Post-run metric publication (observability sink enabled only)."""
    registry = obs.registry()
    pipeline = cpu.pipeline
    executed = registry.counter(
        "instructions_executed",
        "retired instructions by opcode and secure bit")
    for (op, secure), count in sorted(pipeline.opcode_mix.items()):
        executed.inc(count, opcode=op, secure=secure)
    registry.counter("instructions_retired",
                     "retired instructions by secure bit") \
        .inc(pipeline.secure_retired, secure=True)
    registry.counter("instructions_retired") \
        .inc(pipeline.retired - pipeline.secure_retired, secure=False)
    registry.counter("stall_cycles", "pipeline stalls by cause") \
        .inc(pipeline.stall_cycles, reason="load_use")
    registry.counter("squashed_instructions",
                     "instructions squashed by cause") \
        .inc(pipeline.squashed_instructions, reason="redirect")
    taken = pipeline.branches_taken
    registry.counter("branches_executed", "branches by outcome") \
        .inc(taken, outcome="taken")
    registry.counter("branches_executed") \
        .inc(pipeline.branches_executed - taken, outcome="not_taken")
    tracker.publish_metrics(registry)


def des_run(program: Program, key64: int, plaintext64: int,
            params: EnergyParams = DEFAULT_PARAMS,
            collect_components: bool = False,
            label: str = "", noise_sigma: float = 0.0,
            noise_seed: int = 0, engine: Optional[str] = None) -> RunResult:
    """Run a DES program image on one (key, plaintext) pair with tracing."""
    inputs = {"key": key_words(key64)}
    if "plaintext" in program.symbols:
        inputs["plaintext"] = plaintext_words(plaintext64)
    return run_with_trace(program, inputs, params=params,
                          collect_components=collect_components, label=label,
                          noise_sigma=noise_sigma, noise_seed=noise_seed,
                          engine=engine)
