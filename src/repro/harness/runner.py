"""Run programs under the energy tracker and capture traces."""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..energy.trace import EnergyTrace
from ..energy.tracker import EnergyTracker
from ..isa.program import Program
from ..machine import fastpath
from ..machine.cpu import CPU
from ..machine.exceptions import CycleLimitExceeded
from ..programs.workloads import key_words, plaintext_words


class RunResult:
    """A finished simulation: CPU state plus its energy trace."""

    def __init__(self, cpu: CPU, tracker: EnergyTracker, label: str = "",
                 engine: str = "reference"):
        self.cpu = cpu
        self.tracker = tracker
        #: Engine that produced the trace: ``"fast"``, ``"fast-fallback"``
        #: (the recorded schedule diverged and the trace was re-run on the
        #: reference engine), or ``"reference"``.
        self.engine = engine
        #: Per-run attribution sink (None unless attribution was enabled).
        self.attribution = tracker.attribution
        self.trace = EnergyTrace.from_tracker(tracker,
                                              markers=cpu.pipeline.markers,
                                              label=label)

    @property
    def cycles(self) -> int:
        return self.cpu.cycles

    @property
    def total_uj(self) -> float:
        return self.tracker.total_energy_uj

    @property
    def average_pj(self) -> float:
        return self.tracker.average_energy_pj


def run_with_trace(program: Program,
                   inputs: Optional[dict[str, list[int]]] = None,
                   params: EnergyParams = DEFAULT_PARAMS,
                   collect_components: bool = False,
                   label: str = "",
                   max_cycles: int = 50_000_000,
                   noise_sigma: float = 0.0,
                   noise_seed: int = 0,
                   operand_isolation: bool = True,
                   stream=None, keep_trace: bool = True,
                   engine: Optional[str] = None) -> RunResult:
    """Assembled program + symbol inputs -> executed RunResult with trace.

    ``engine`` selects the execution engine: ``"fast"`` replays the
    program's recorded cycle schedule (bit-identical output; see
    :mod:`repro.machine.fastpath`), ``"reference"`` steps the five-stage
    pipeline cycle by cycle.  ``None`` resolves ``$REPRO_ENGINE`` and
    defaults to ``"fast"``.  A fast run whose recorded control path
    diverges (input-dependent branching) is transparently re-run on the
    reference engine with fresh state — nothing from the abandoned
    attempt leaks into the result.  Streaming runs (``stream`` set) always
    use the reference engine so a mid-run divergence can never leave a
    partially written trace behind.

    When the observability sink is enabled (:func:`repro.obs.enabled`),
    the run executes under an ``execute`` span, collects the dynamic
    instruction mix, and publishes pipeline/energy metrics to the current
    registry; with the sink disabled (the default) the simulated path is
    identical to an uninstrumented runner.

    When attribution is enabled (:func:`repro.obs.attribution_enabled`),
    the tracker additionally books every energy increment to its
    (pc, unit, class, secure) provenance key; the per-run sink is
    annotated with the program's debug info and merged into the current
    observability context.

    ``stream`` is an optional bounded-memory per-cycle trace writer
    (:class:`~repro.harness.io.StreamingTraceWriter`); pass
    ``keep_trace=False`` alongside it to drop the in-memory trace
    entirely (the returned result then has an empty energy vector).
    """
    resolved = fastpath.resolve_engine(engine)
    if resolved == "fast" and stream is None:
        try:
            return _run_with_trace_once(
                program, inputs, params, collect_components, label,
                max_cycles, noise_sigma, noise_seed, operand_isolation,
                stream, keep_trace, engine="fast")
        except fastpath.ScheduleFallback:
            if obs.enabled():
                obs.counter("engine_fallbacks",
                            "fast-engine runs served by the reference "
                            "engine instead").inc()
            resolved = "fast-fallback"
    else:
        resolved = "reference"
    return _run_with_trace_once(
        program, inputs, params, collect_components, label, max_cycles,
        noise_sigma, noise_seed, operand_isolation, stream, keep_trace,
        engine=resolved)


def _run_with_trace_once(program, inputs, params, collect_components,
                         label, max_cycles, noise_sigma, noise_seed,
                         operand_isolation, stream, keep_trace, *,
                         engine: str) -> RunResult:
    """One execution attempt on one engine, with fresh tracker/CPU state.

    ``engine="fast"`` may raise :class:`~repro.machine.fastpath
    .ScheduleFallback` at any point before completion; the abandoned
    tracker, memory, and attribution sink are discarded unmerged, so the
    caller's retry starts from scratch.
    """
    observing = obs.enabled()
    attribution = obs.AttributionSink() if obs.attribution_enabled() \
        else None
    tracker = EnergyTracker(params, collect_components=collect_components,
                            noise_sigma=noise_sigma, noise_seed=noise_seed,
                            attribution=attribution, stream=stream,
                            keep_trace=keep_trace)
    if engine == "fast":
        bound = fastpath.bound_schedule_for(
            program, operand_isolation=operand_isolation,
            max_cycles=max_cycles)
        cpu = fastpath.ReplayCPU(program, bound, tracker=tracker,
                                 operand_isolation=operand_isolation,
                                 collect_mix=observing)
    else:
        cpu = CPU(program, tracker=tracker,
                  operand_isolation=operand_isolation, collect_mix=observing)
    if inputs:
        for symbol, words in inputs.items():
            cpu.write_symbol_words(symbol, words)
    with obs.span("execute", label=label, engine=engine):
        try:
            cpu.run(max_cycles=max_cycles)
        except CycleLimitExceeded as overrun:
            # Tag the overrun with the job it belongs to; batch failure
            # records surface the label alongside pc/cycle context.
            overrun.label = label
            raise
    if observing:
        _publish_run_metrics(cpu, tracker)
    if attribution is not None:
        attribution.annotate(program)
        obs.attribution().merge(attribution)
    return RunResult(cpu, tracker, label=label, engine=engine)


def _publish_run_metrics(cpu: CPU, tracker: EnergyTracker) -> None:
    """Post-run metric publication (observability sink enabled only)."""
    registry = obs.registry()
    pipeline = cpu.pipeline
    executed = registry.counter(
        "instructions_executed",
        "retired instructions by opcode and secure bit")
    for (op, secure), count in sorted(pipeline.opcode_mix.items()):
        executed.inc(count, opcode=op, secure=secure)
    registry.counter("instructions_retired",
                     "retired instructions by secure bit") \
        .inc(pipeline.secure_retired, secure=True)
    registry.counter("instructions_retired") \
        .inc(pipeline.retired - pipeline.secure_retired, secure=False)
    registry.counter("stall_cycles", "pipeline stalls by cause") \
        .inc(pipeline.stall_cycles, reason="load_use")
    registry.counter("squashed_instructions",
                     "instructions squashed by cause") \
        .inc(pipeline.squashed_instructions, reason="redirect")
    taken = pipeline.branches_taken
    registry.counter("branches_executed", "branches by outcome") \
        .inc(taken, outcome="taken")
    registry.counter("branches_executed") \
        .inc(pipeline.branches_executed - taken, outcome="not_taken")
    tracker.publish_metrics(registry)


def des_run(program: Program, key64: int, plaintext64: int,
            params: EnergyParams = DEFAULT_PARAMS,
            collect_components: bool = False,
            label: str = "", noise_sigma: float = 0.0,
            noise_seed: int = 0, engine: Optional[str] = None) -> RunResult:
    """Run a DES program image on one (key, plaintext) pair with tracing."""
    inputs = {"key": key_words(key64)}
    if "plaintext" in program.symbols:
        inputs["plaintext"] = plaintext_words(plaintext64)
    return run_with_trace(program, inputs, params=params,
                          collect_components=collect_components, label=label,
                          noise_sigma=noise_sigma, noise_seed=noise_seed,
                          engine=engine)
