"""Experiment registry: one entry per table/figure of the paper.

Each experiment function runs the relevant workloads on the simulator and
returns an :class:`ExperimentResult` whose ``summary`` carries the scalar
observables the paper reports (and that the benchmark suite asserts on) and
whose ``series`` carries the per-cycle data behind the corresponding figure.

Fixed test inputs: the classic FIPS-era test vector key/plaintext, plus
derived variants (the paper's Fig. 7 uses two keys differing in bit 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..attacks.cpa import cpa_attack
from ..attacks.dpa import (TraceSet, collect_traces, dpa_attack,
                           dpa_attack_multibit, random_plaintexts)
from ..attacks.spa import analyze as spa_analyze
from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..energy.models import FunctionalUnitModel
from ..energy.circuits import PrechargedXorCell
from ..obs.leakage import LeakageReport, assess_pair
from ..programs import markers as mk
from ..programs.des_source import DesProgramSpec
from ..programs.workloads import compile_des
from .engine import run_jobs
from .runner import RunResult, des_run

KEY_A = 0x133457799BBCDFF1
#: KEY_A with key bit 1 (FIPS MSB-first numbering) flipped — Fig. 7's pair.
KEY_B_BIT1 = KEY_A ^ (1 << 63)
#: An unrelated second key — Figs. 8/9's pair.
KEY_C = 0x0E329232EA6D0D73
PT_A = 0x0123456789ABCDEF
#: A second plaintext — Figs. 10/11's pair.
PT_B = 0x4E6F772069732074


@dataclass
class ExperimentResult:
    experiment_id: str
    title: str
    summary: dict[str, float | int | str | bool]
    series: dict[str, np.ndarray] = field(default_factory=dict)
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""
    #: Per-region leakage-budget verdicts for the differential
    #: experiments (kept out of ``summary`` so existing manifests and
    #: benchmark assertions are unchanged).
    leakage: Optional[LeakageReport] = None


def _round1_window(run: RunResult) -> tuple[int, int]:
    """Cycle span of round 1 (start of round 0-indexed 0 to its end)."""
    start = run.trace.marker_cycles(mk.M_ROUND_BASE)[0]
    later = [c for c, v in run.trace.markers
             if c > start and v in (mk.M_ROUND_BASE + 1, mk.M_FP_START)]
    end = min(later) if later else len(run.trace)
    return start, end


def _secure_region(run: RunResult) -> tuple[int, int]:
    """Everything from the first key use (PC-1) to the final permutation."""
    start = run.trace.marker_cycles(mk.M_KEYPERM_START)[0]
    fp = run.trace.marker_cycles(mk.M_FP_START)
    end = fp[0] if fp else len(run.trace)
    return start, end


def _subcheckpoint(checkpoint: Optional[str], tag: str) -> Optional[str]:
    """Derive a per-batch journal path for a multi-batch experiment.

    A checkpoint journal is keyed by one batch's content digest, so an
    experiment that runs several distinct batches (two trace collections,
    one sweep per parameter) gives each its own ``<path>.<tag>`` file.
    """
    return f"{checkpoint}.{tag}" if checkpoint else None


# ---------------------------------------------------------------------------
# Fig. 6 — energy trace of the whole encryption reveals the 16 rounds
# ---------------------------------------------------------------------------


def fig06_rounds_trace(params: EnergyParams = DEFAULT_PARAMS
                       ) -> ExperimentResult:
    compiled = compile_des(masking="none")
    run = des_run(compiled.program, KEY_A, PT_A, params=params)
    spa = spa_analyze(run.trace.energy, min_period=2000, max_period=30000)
    true_starts = [c for c, v in run.trace.markers
                   if mk.M_ROUND_BASE <= v < mk.M_ROUND_BASE + 16]
    return ExperimentResult(
        experiment_id="fig6",
        title="Energy consumption trace of encryption (every 10 cycles)",
        summary={
            "cycles": run.cycles,
            "total_uj": run.total_uj,
            "average_pj_per_cycle": run.average_pj,
            "spa_detected_rounds": spa.round_count,
            "spa_detected_period": spa.period,
            "true_round_count": len(true_starts),
            "true_round_period": int(np.median(np.diff(true_starts)))
            if len(true_starts) > 1 else 0,
        },
        series={"energy_every_10_cycles": run.trace.decimate(10)},
        notes="SPA (autocorrelation + matched filter) recovers the round "
              "structure from a single trace, as the paper's Fig. 6 shows "
              "visually.")


# ---------------------------------------------------------------------------
# Figs. 7/8/9 — differential traces for two keys
# ---------------------------------------------------------------------------


def _key_differential(masking: str, key_a: int, key_b: int,
                      params: EnergyParams
                      ) -> tuple[RunResult, np.ndarray, LeakageReport]:
    compiled = compile_des(DesProgramSpec(rounds=1), masking=masking)
    run_a = des_run(compiled.program, key_a, PT_A, params=params)
    run_b = des_run(compiled.program, key_b, PT_A, params=params)
    report = assess_pair(run_a.trace, run_b.trace,
                         label=f"keys/{masking}")
    return run_a, run_a.trace.diff(run_b.trace), report


def fig07_key_diff_round1(params: EnergyParams = DEFAULT_PARAMS
                          ) -> ExperimentResult:
    run, diff, leakage = _key_differential("none", KEY_A, KEY_B_BIT1, params)
    start, end = _secure_region(run)
    window = diff[start:end]
    return ExperimentResult(
        experiment_id="fig7",
        title="Differential trace, two keys varying in bit 1 (round 1, "
              "unmasked)",
        summary={
            "max_abs_diff_pj": float(np.abs(window).max()),
            "nonzero_cycles": int(np.count_nonzero(window)),
            "window_cycles": int(window.size),
            "leak_visible": bool(np.abs(window).max() > 0),
        },
        series={"diff": window},
        leakage=leakage,
        notes="A single flipped key bit produces visible per-cycle energy "
              "differences in the unmasked round-1 computation.")


def fig08_key_diff_unmasked(params: EnergyParams = DEFAULT_PARAMS
                            ) -> ExperimentResult:
    run, diff, leakage = _key_differential("none", KEY_A, KEY_C, params)
    start, end = _secure_region(run)
    window = diff[start:end]
    return ExperimentResult(
        experiment_id="fig8",
        title="Differential trace, two keys, before masking (round 1)",
        summary={
            "max_abs_diff_pj": float(np.abs(window).max()),
            "nonzero_cycles": int(np.count_nonzero(window)),
            "window_cycles": int(window.size),
            "leak_visible": bool(np.abs(window).max() > 0),
        },
        series={"diff": window},
        leakage=leakage)


def fig09_key_diff_masked(params: EnergyParams = DEFAULT_PARAMS
                          ) -> ExperimentResult:
    run, diff, leakage = _key_differential("selective", KEY_A, KEY_C, params)
    start, end = _secure_region(run)
    window = diff[start:end]
    return ExperimentResult(
        experiment_id="fig9",
        title="Differential trace, two keys, after masking (round 1)",
        summary={
            "max_abs_diff_pj": float(np.abs(window).max()),
            "nonzero_cycles": int(np.count_nonzero(window)),
            "window_cycles": int(window.size),
            "masked_flat": bool(np.abs(window).max() == 0),
        },
        series={"diff": window},
        leakage=leakage,
        notes="With selective secure instructions the differential trace is "
              "identically zero over every key-dependent operation.")


# ---------------------------------------------------------------------------
# Figs. 10/11 — differential traces for two plaintexts
# ---------------------------------------------------------------------------


def _plaintext_differential(masking: str, params: EnergyParams
                            ) -> tuple[RunResult, np.ndarray, LeakageReport]:
    compiled = compile_des(DesProgramSpec(rounds=1), masking=masking)
    run_a = des_run(compiled.program, KEY_A, PT_A, params=params)
    run_b = des_run(compiled.program, KEY_A, PT_B, params=params)
    report = assess_pair(run_a.trace, run_b.trace,
                         label=f"plaintexts/{masking}")
    return run_a, run_a.trace.diff(run_b.trace), report


def fig10_pt_diff_unmasked(params: EnergyParams = DEFAULT_PARAMS
                           ) -> ExperimentResult:
    run, diff, leakage = _plaintext_differential("none", params)
    ip_start = run.trace.marker_cycles(mk.M_IP_START)[0]
    ip_end = run.trace.marker_cycles(mk.M_IP_END)[0]
    sec_start, sec_end = _secure_region(run)
    return ExperimentResult(
        experiment_id="fig10",
        title="Differential trace, two plaintexts, before masking (round 1)",
        summary={
            "max_abs_diff_ip_pj": float(np.abs(diff[ip_start:ip_end]).max()),
            "max_abs_diff_round_pj":
                float(np.abs(diff[sec_start:sec_end]).max()),
            "round_leak_visible":
                bool(np.abs(diff[sec_start:sec_end]).max() > 0),
        },
        series={"diff": diff},
        leakage=leakage)


def fig11_pt_diff_masked(params: EnergyParams = DEFAULT_PARAMS
                         ) -> ExperimentResult:
    run, diff, leakage = _plaintext_differential("selective", params)
    ip_start = run.trace.marker_cycles(mk.M_IP_START)[0]
    ip_end = run.trace.marker_cycles(mk.M_IP_END)[0]
    sec_start, sec_end = _secure_region(run)
    return ExperimentResult(
        experiment_id="fig11",
        title="Differential trace, two plaintexts, after masking (round 1)",
        summary={
            "max_abs_diff_ip_pj": float(np.abs(diff[ip_start:ip_end]).max()),
            "max_abs_diff_round_pj":
                float(np.abs(diff[sec_start:sec_end]).max()),
            "ip_still_differs": bool(np.abs(diff[ip_start:ip_end]).max() > 0),
            "round_masked_flat":
                bool(np.abs(diff[sec_start:sec_end]).max() == 0),
        },
        series={"diff": diff},
        leakage=leakage,
        notes="The initial permutation is deliberately not secured (no key "
              "involved), so plaintext-dependent differences remain there; "
              "the secured round body is flat.")


# ---------------------------------------------------------------------------
# Fig. 12 — additional energy due to masking during the 1st key permutation
# ---------------------------------------------------------------------------


def fig12_masking_overhead(params: EnergyParams = DEFAULT_PARAMS
                           ) -> ExperimentResult:
    spec = DesProgramSpec(rounds=0, include_ip=False, include_fp=False)
    masked = compile_des(spec, masking="selective")
    unmasked = compile_des(spec, masking="none")
    run_m = des_run(masked.program, KEY_A, PT_A, params=params)
    run_u = des_run(unmasked.program, KEY_A, PT_A, params=params)
    overhead = run_m.trace.diff(run_u.trace)
    start = run_m.trace.marker_cycles(mk.M_KEYPERM_START)[0]
    end = run_m.trace.marker_cycles(mk.M_KEYPERM_END)[0]
    window = overhead[start:end]
    active = window[window > 0]
    return ExperimentResult(
        experiment_id="fig12",
        title="Additional energy consumed by masking during the 1st key "
              "permutation",
        summary={
            "mean_overhead_pj_per_cycle": float(window.mean()),
            "mean_overhead_active_pj": float(active.mean()) if active.size
            else 0.0,
            "active_cycle_fraction": float(active.size / window.size),
            "max_overhead_pj": float(window.max()),
            "min_overhead_pj": float(window.min()),
            "window_cycles": int(window.size),
            "paper_overhead_pj_per_cycle": 45.0,
        },
        series={"overhead": window},
        notes="The paper reports ~45 pJ/cycle of additional energy in the "
              "masked key permutation; overhead is paid even where the "
              "differential profile showed no difference (conservatism). "
              "Our phase-average is lower because the generated code "
              "interleaves more insecure loop bookkeeping per secure op; "
              "on the cycles where secure instructions are in flight the "
              "overhead matches the paper's operating point.")


# ---------------------------------------------------------------------------
# Section 4.3 totals — the four masking policies (tab1)
# ---------------------------------------------------------------------------

PAPER_TOTALS_UJ = {
    "none": 46.4,
    "selective": 52.6,
    "all-loads-stores": 63.6,
    "all": 83.5,
}


def tab1_policy_energy(params: EnergyParams = DEFAULT_PARAMS,
                       rounds: int = 16, jobs: int = 1, retries: int = 0,
                       job_timeout: Optional[float] = None,
                       checkpoint: Optional[str] = None) -> ExperimentResult:
    from .resilience import require_results
    from .sweeps import policy_jobs

    results = require_results(
        run_jobs(policy_jobs(params, rounds=rounds, key=KEY_A,
                             plaintext=PT_A), jobs=jobs,
                 failure_policy="retry" if retries else "raise",
                 retries=retries, job_timeout=job_timeout,
                 checkpoint=checkpoint))
    rows = []
    totals: dict[str, float] = {}
    averages: dict[str, float] = {}
    for run in results:
        name = run.label
        totals[name] = run.total_uj
        averages[name] = run.average_pj
        rows.append((name, f"{run.total_uj:.2f}",
                     f"{run.total_uj / totals['none']:.3f}" if "none" in totals
                     else "1.000",
                     f"{run.average_pj:.1f}",
                     f"{PAPER_TOTALS_UJ[name]:.1f}",
                     f"{PAPER_TOTALS_UJ[name] / PAPER_TOTALS_UJ['none']:.3f}"))
    overhead_saving = 1.0 - ((totals["selective"] - totals["none"])
                             / (totals["all"] - totals["none"]))
    paper_saving = 1.0 - ((PAPER_TOTALS_UJ["selective"]
                           - PAPER_TOTALS_UJ["none"])
                          / (PAPER_TOTALS_UJ["all"] - PAPER_TOTALS_UJ["none"]))
    return ExperimentResult(
        experiment_id="tab1",
        title="Total DES encryption energy under the four masking policies",
        summary={
            "total_none_uj": totals["none"],
            "total_selective_uj": totals["selective"],
            "total_all_loads_stores_uj": totals["all-loads-stores"],
            "total_all_uj": totals["all"],
            "ratio_selective": totals["selective"] / totals["none"],
            "ratio_all_loads_stores":
                totals["all-loads-stores"] / totals["none"],
            "ratio_all": totals["all"] / totals["none"],
            "average_pj_none": averages["none"],
            "overhead_saving_vs_all": overhead_saving,
            "paper_overhead_saving_vs_all": paper_saving,
        },
        rows=rows,
        notes="Absolute µJ differ from the paper by the cycle-count ratio of "
              "our generated DES binary vs. theirs; the policy *ratios* and "
              "the ~83% overhead saving are the reproduced observables.")


# ---------------------------------------------------------------------------
# Section 4.2 — XOR functional unit operating points
# ---------------------------------------------------------------------------


def xor_unit_energy(params: EnergyParams = DEFAULT_PARAMS,
                    samples: int = 4096, seed: int = 7
                    ) -> ExperimentResult:
    unit = FunctionalUnitModel(params.event_energy_xor_static,
                               params.event_energy_xor, params.width)
    rng = np.random.default_rng(seed)
    operands = rng.integers(0, 1 << 32, size=(samples, 2), dtype=np.uint64)
    normal = [unit.execute(int(a), int(b), int(a) ^ int(b), secure=False)
              for a, b in operands]
    unit.reset()
    secure = [unit.execute(int(a), int(b), int(a) ^ int(b), secure=True)
              for a, b in operands]
    cell = PrechargedXorCell()
    cell_events = [cell.step(int(a) & 1, int(b) & 1, secure=True)
                   .charging_events for a, b in operands]
    return ExperimentResult(
        experiment_id="xor-op",
        title="XOR unit energy: normal vs secure (pre-charged complementary)",
        summary={
            "normal_mean_pj": float(np.mean(normal)),
            "normal_std_pj": float(np.std(normal)),
            "secure_mean_pj": float(np.mean(secure)),
            "secure_std_pj": float(np.std(secure)),
            "paper_normal_pj": 0.3,
            "paper_secure_pj": 0.6,
            "cell_constant_after_first_cycle":
                len(set(cell_events[1:])) == 1,
        },
        notes="Secure mode is exactly constant (std 0); normal mode averages "
              "half the secure energy, matching the paper's 0.3 vs 0.6 pJ.")


# ---------------------------------------------------------------------------
# DPA experiment — attack succeeds unmasked, fails masked
# ---------------------------------------------------------------------------


def dpa_experiment(params: EnergyParams = DEFAULT_PARAMS,
                   n_traces: int = 100, box: int = 0,
                   key: int = KEY_A, seed: int = 2003,
                   all_boxes: bool = True, jobs: int = 1, retries: int = 0,
                   job_timeout: Optional[float] = None,
                   checkpoint: Optional[str] = None) -> ExperimentResult:
    spec = DesProgramSpec(rounds=1, include_fp=False)
    plaintexts = random_plaintexts(n_traces, seed=seed)
    outcome: dict[str, float | int | str | bool] = {"n_traces": n_traces,
                                                    "box": box}
    for masking in ("none", "selective"):
        compiled = compile_des(spec, masking=masking)
        scout = des_run(compiled.program, key, plaintexts[0], params=params)
        start = scout.trace.marker_cycles(mk.M_ROUND_BASE)[0]
        traces = collect_traces(compiled.program, key, plaintexts,
                                params=params, window=(start, scout.cycles),
                                jobs=jobs, retries=retries,
                                job_timeout=job_timeout,
                                checkpoint=_subcheckpoint(checkpoint,
                                                          masking))
        single = dpa_attack(traces, box=box, target_bit=0, key=key)
        multi = dpa_attack_multibit(traces, box=box, key=key)
        correlation = cpa_attack(traces, box=box, key=key)
        tag = "unmasked" if masking == "none" else "masked"
        # Peaks below ~1e-6 pJ are float64 round-off from the mean
        # subtraction, not physical signal.
        noise_floor = 1e-6
        outcome[f"{tag}_rank_of_true"] = single.rank_of_true
        outcome[f"{tag}_peak_pj"] = single.scores[0].peak
        outcome[f"{tag}_margin"] = single.margin
        outcome[f"{tag}_multibit_rank_of_true"] = multi.rank_of_true
        outcome[f"{tag}_succeeded"] = (multi.succeeded()
                                       and single.scores[0].peak
                                       > noise_floor)
        outcome[f"{tag}_cpa_rank_of_true"] = correlation.rank_of_true
        outcome[f"{tag}_cpa_peak_rho"] = correlation.scores[0].peak
        outcome[f"{tag}_cpa_succeeded"] = correlation.succeeded()
        if all_boxes and masking == "none":
            # Full K1 recovery: one trace set serves all eight S-boxes
            # (48 of the 56 key bits; the rest fall to a 256-way search).
            recovered = 0
            for target_box in range(8):
                box_result = cpa_attack(traces, box=target_box, key=key)
                if box_result.succeeded():
                    recovered += 1
            outcome["unmasked_boxes_recovered_of_8"] = recovered
    return ExperimentResult(
        experiment_id="dpa",
        title="DPA key recovery: unmasked vs masked round-1 DES",
        summary=outcome,
        notes="Against the masked program every difference-of-means trace "
              "is identically zero in the secured window, so no subkey "
              "guess is distinguished.")


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def ablation_no_slicing(params: EnergyParams = DEFAULT_PARAMS
                        ) -> ExperimentResult:
    """Annotate-only masking (no forward slicing) leaks indirectly."""
    results = {}
    for masking in ("annotate-only", "selective"):
        run, diff, _ = _key_differential(masking, KEY_A, KEY_C, params)
        start, end = _secure_region(run)
        window = diff[start:end]
        results[masking] = (float(np.abs(window).max()),
                            int(np.count_nonzero(window)))
    return ExperimentResult(
        experiment_id="ablation-slice",
        title="Forward slicing ablation: annotate-only vs sliced masking",
        summary={
            "annotate_only_max_abs_diff_pj": results["annotate-only"][0],
            "annotate_only_nonzero_cycles": results["annotate-only"][1],
            "selective_max_abs_diff_pj": results["selective"][0],
            "selective_nonzero_cycles": results["selective"][1],
            "slicing_required": results["annotate-only"][0] > 0
            and results["selective"][0] == 0.0,
        },
        notes="Securing only the operations that directly touch the "
              "annotated key still leaks through derived values (C/D "
              "registers, subkeys, round data) — the paper's argument for "
              "forward slicing.")


def ablation_components(params: EnergyParams = DEFAULT_PARAMS
                        ) -> ExperimentResult:
    """Which datapath components carry the key-dependent leakage."""
    from ..energy.tracker import COMPONENTS
    compiled = compile_des(DesProgramSpec(rounds=1), masking="none")
    run_a = des_run(compiled.program, KEY_A, PT_A, params=params,
                    collect_components=True)
    run_b = des_run(compiled.program, KEY_C, PT_A, params=params,
                    collect_components=True)
    start, end = _secure_region(run_a)
    delta = np.abs(run_a.trace.components[start:end]
                   - run_b.trace.components[start:end])
    totals = delta.sum(axis=0)
    summary: dict[str, float | int | str | bool] = {
        f"leak_{name}_pj": float(total)
        for name, total in zip(COMPONENTS, totals)}
    ranked = sorted(zip(COMPONENTS, totals), key=lambda kv: -kv[1])
    summary["dominant_component"] = ranked[0][0]
    return ExperimentResult(
        experiment_id="ablation-components",
        title="Per-component attribution of key-dependent energy leakage",
        summary=summary,
        notes="The paper: 'the processor datapath and buses exhibit more "
              "data-dependent energy variation as compared to memory "
              "components'.")


def extension_aes(params: EnergyParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Extension: the masking scheme applied to AES-128 (the authors'
    follow-up work generalizes exactly this way).

    Runs full AES-128 unmasked and selectively masked, verifies FIPS-197
    correctness, and checks the masking property plus the energy cost on a
    second cipher.
    """
    from ..aes.reference import encrypt_block as aes_encrypt
    from ..programs.workloads import aes_ciphertext_of, compile_aes, run_aes
    from ..energy.tracker import EnergyTracker

    key_a = 0x000102030405060708090a0b0c0d0e0f
    key_b = key_a ^ (1 << 127)
    plaintext = 0x00112233445566778899aabbccddeeff

    results: dict[str, dict] = {}
    for masking in ("none", "selective"):
        compiled = compile_aes(masking=masking)
        data = {}
        traces = []
        markers = []
        for key in (key_a, key_b):
            tracker = EnergyTracker(params)
            cpu = run_aes(compiled, key, plaintext, tracker=tracker)
            if key == key_a:
                data["correct"] = (aes_ciphertext_of(cpu)
                                   == aes_encrypt(plaintext, key_a))
                data["cycles"] = cpu.cycles
                data["total_uj"] = tracker.total_energy_uj
            traces.append(np.asarray(tracker.cycle_energy))
            markers.append(cpu.pipeline.markers)
        start = next(c for c, v in markers[0] if v == mk.M_KEYPERM_START)
        end = next(c for c, v in markers[0] if v == mk.M_FP_START)
        delta = (traces[0] - traces[1])[start:end]
        data["max_abs_diff_pj"] = float(np.abs(delta).max())
        data["nonzero_cycles"] = int(np.count_nonzero(delta))
        results[masking] = data

    # The inverse cipher under the same scheme.
    from ..aes.reference import decrypt_block as aes_decrypt
    from ..programs.aes_source import AesProgramSpec

    ciphertext = aes_encrypt(plaintext, key_a)
    decryptor = compile_aes(AesProgramSpec(decrypt=True),
                            masking="selective")
    decrypt_cpu = run_aes(decryptor, key_a, ciphertext)
    decrypt_correct = aes_ciphertext_of(decrypt_cpu) == plaintext \
        and aes_decrypt(ciphertext, key_a) == plaintext

    return ExperimentResult(
        experiment_id="ext-aes",
        title="Extension: selective energy masking applied to AES-128",
        summary={
            "fips_correct_unmasked": results["none"]["correct"],
            "fips_correct_masked": results["selective"]["correct"],
            "inverse_cipher_correct_masked": decrypt_correct,
            "cycles": results["none"]["cycles"],
            "total_unmasked_uj": results["none"]["total_uj"],
            "total_masked_uj": results["selective"]["total_uj"],
            "energy_ratio": results["selective"]["total_uj"]
            / results["none"]["total_uj"],
            "unmasked_max_abs_diff_pj": results["none"]["max_abs_diff_pj"],
            "unmasked_nonzero_cycles": results["none"]["nonzero_cycles"],
            "masked_max_abs_diff_pj":
                results["selective"]["max_abs_diff_pj"],
            "masked_nonzero_cycles": results["selective"]["nonzero_cycles"],
        },
        notes="MixColumns is reformulated through an XTIME table so the "
              "cipher has no secret-dependent control flow; S-box and "
              "XTIME lookups use the secure-indexed load.")


def extension_optimizer(params: EnergyParams = DEFAULT_PARAMS
                        ) -> ExperimentResult:
    """Extension: the compiler's -O1/-O2 pipeline on masked DES.

    The paper calls its compiler an optimizing compiler; this experiment
    quantifies what optimization does to the energy/security trade-off:
    folding + immediates (-O1) shrink the binary, list scheduling (-O2)
    removes load-use stalls, and the masking property must hold at every
    level.
    """
    from ..lang.compiler import compile_source
    from ..programs.des_source import des_source

    source = des_source(DesProgramSpec(rounds=16))
    round1 = des_source(DesProgramSpec(rounds=1))
    summary: dict[str, float | int | str | bool] = {}
    baseline_cycles = None
    baseline_uj = None
    for level in (0, 1, 2):
        compiled = compile_source(source, masking="selective",
                                  optimize=level)
        run = des_run(compiled.program, KEY_A, PT_A, params=params)
        if level == 0:
            baseline_cycles = run.cycles
            baseline_uj = run.total_uj
        summary[f"o{level}_static_instructions"] = len(compiled.program.text)
        summary[f"o{level}_cycles"] = run.cycles
        summary[f"o{level}_total_uj"] = run.total_uj
        summary[f"o{level}_cycle_ratio"] = run.cycles / baseline_cycles
        summary[f"o{level}_energy_ratio"] = run.total_uj / baseline_uj
        # Masking property at this level (round-1 differential).
        round1_compiled = compile_source(round1, masking="selective",
                                         optimize=level)
        run_a = des_run(round1_compiled.program, KEY_A, PT_A, params=params)
        run_b = des_run(round1_compiled.program, KEY_C, PT_A, params=params)
        diff = run_a.trace.diff(run_b.trace)
        start = run_a.trace.marker_cycles(mk.M_KEYPERM_START)[0]
        end = run_a.trace.marker_cycles(mk.M_FP_START)[0]
        summary[f"o{level}_masked_max_diff_pj"] = \
            float(np.abs(diff[start:end]).max())
    return ExperimentResult(
        experiment_id="ext-opt",
        title="Extension: compiler optimization levels on masked DES",
        summary=summary,
        notes="-O1 shrinks the binary but its savings land in load-use "
              "interlock slots; -O2's list scheduler converts them into "
              "real cycle and energy savings.  The differential trace "
              "stays identically zero at every level.")


def extension_coupling(params: EnergyParams = DEFAULT_PARAMS,
                       c_coupling: float = 0.2) -> ExperimentResult:
    """Extension: the paper's Section 5 limitation, demonstrated.

    "Power consumption differences will also arise due to signal
    transitions on adjacent lines of on-chip buses.  Current dual-rail
    encoding schemes do not mask the key leakage arising due to these
    differences."  With inter-wire coupling modeled on the data bus, the
    selectively-masked program's key differential is no longer flat.
    """
    compiled = compile_des(DesProgramSpec(rounds=1), masking="selective")
    summary: dict[str, float | int | str | bool] = {
        "c_coupling_pf": c_coupling}
    for label, coupling in (("without_coupling", 0.0),
                            ("with_coupling", c_coupling)):
        run_params = params.scaled(c_coupling=coupling)
        run_a = des_run(compiled.program, KEY_A, PT_A, params=run_params)
        run_b = des_run(compiled.program, KEY_C, PT_A, params=run_params)
        diff = run_a.trace.diff(run_b.trace)
        start, end = _secure_region(run_a)
        window = diff[start:end]
        summary[f"{label}_max_abs_diff_pj"] = float(np.abs(window).max())
        summary[f"{label}_nonzero_cycles"] = int(np.count_nonzero(window))
    summary["masking_defeated_by_coupling"] = \
        summary["without_coupling_max_abs_diff_pj"] == 0.0 \
        and summary["with_coupling_max_abs_diff_pj"] > 0.0
    return ExperimentResult(
        experiment_id="ext-coupling",
        title="Extension: inter-wire coupling defeats dual-rail masking "
              "(paper Section 5)",
        summary=summary,
        notes="Within a dual-rail pair exactly one rail switches per cycle "
              "(data-independent), but whether adjacent rails of "
              "*different* pairs switch together depends on the data — "
              "the residual side channel the paper flags as future work.")


def extension_noise(params: EnergyParams = DEFAULT_PARAMS,
                    noise_sigma: float = 10.0, n_small: int = 20,
                    n_large: int = 250, box: int = 0,
                    key: int = KEY_A, jobs: int = 1, retries: int = 0,
                    job_timeout: Optional[float] = None,
                    checkpoint: Optional[str] = None) -> ExperimentResult:
    """Extension: random power noise vs. masking (paper Section 1).

    The paper: "random noises in power measurements can be filtered
    through the averaging process using a large number of samples.
    However, the use of random noises can increase the number of samples
    to an infeasible number."  We reproduce that trade-off: with Gaussian
    power noise injected, DPA fails at a small trace count but succeeds
    once enough traces average it out — while masking removes the signal
    at *any* trace count.
    """
    spec = DesProgramSpec(rounds=1, include_fp=False)
    plaintexts = random_plaintexts(n_large)
    unmasked = compile_des(spec, masking="none")
    scout = des_run(unmasked.program, key, plaintexts[0], params=params)
    window = (scout.trace.marker_cycles(mk.M_ROUND_BASE)[0], scout.cycles)

    # Noiseless baseline: a handful of traces suffice (CPA with the
    # Hamming-weight model is the strongest attack in this suite, so it
    # sets the fairest baseline for the noise comparison).
    clean = collect_traces(unmasked.program, key, plaintexts[:n_small],
                           params=params, window=window, jobs=jobs,
                           retries=retries, job_timeout=job_timeout,
                           checkpoint=_subcheckpoint(checkpoint, "clean"))
    clean_result = cpa_attack(clean, box=box, key=key)

    # Noisy device: same attack at small and large trace counts.
    noisy = collect_traces(unmasked.program, key, plaintexts, params=params,
                           window=window, noise_sigma=noise_sigma, jobs=jobs,
                           retries=retries, job_timeout=job_timeout,
                           checkpoint=_subcheckpoint(checkpoint, "noisy"))
    small_set = TraceSet(plaintexts=noisy.plaintexts[:n_small],
                         traces=noisy.traces[:n_small], window=noisy.window)
    noisy_small = cpa_attack(small_set, box=box, key=key)
    noisy_large = cpa_attack(noisy, box=box, key=key)

    # Masked device: even a large noiseless set yields nothing.
    masked = compile_des(spec, masking="selective")
    masked_set = collect_traces(masked.program, key, plaintexts[:n_small],
                                params=params, window=window, jobs=jobs,
                                retries=retries, job_timeout=job_timeout,
                                checkpoint=_subcheckpoint(checkpoint,
                                                          "masked"))
    masked_result = cpa_attack(masked_set, box=box, key=key)

    return ExperimentResult(
        experiment_id="ext-noise",
        title="Extension: random-noise countermeasure vs masking under DPA",
        summary={
            "noise_sigma_pj": noise_sigma,
            "clean_traces": n_small,
            "clean_rank_of_true": clean_result.rank_of_true,
            "noisy_small_traces": n_small,
            "noisy_small_rank_of_true": noisy_small.rank_of_true,
            "noisy_large_traces": n_large,
            "noisy_large_rank_of_true": noisy_large.rank_of_true,
            "noisy_large_margin": noisy_large.margin,
            "masked_peak_rho": masked_result.scores[0].peak,
            "masked_defeats_attack":
                masked_result.scores[0].peak < 1e-6,
        },
        notes="Noise only raises the required sample count (20 -> 250 "
              "here); averaging recovers the key.  Masking zeroes the "
              "differential signal itself, which no sample count "
              "overcomes.")


def extension_tvla(params: EnergyParams = DEFAULT_PARAMS,
                   n_traces: int = 16, streaming: bool = False,
                   jobs: int = 1) -> ExperimentResult:
    """Extension: TVLA fixed-vs-random leakage assessment.

    A non-specific evaluation (no key hypothesis, no leakage model): the
    Welch t-test between a fixed-plaintext and a random-plaintext set
    bounds all first-order attacks.  The unmasked DES fails; the masked
    DES scores |t| identically zero across the whole secured region —
    stronger than the conventional 4.5 pass threshold.

    ``streaming=True`` runs the same acquisitions through the
    bounded-memory campaign path (:func:`streaming_assess_des_program`):
    the verdict fields are computed from the streaming accumulator (equal
    statistics, float-order differences aside) and the summary gains
    disclosure-curve fields.  The default batch path is untouched.
    """
    from ..attacks.tvla import (T_THRESHOLD, assess_des_program,
                                streaming_assess_des_program)

    spec = DesProgramSpec(rounds=1)
    plaintexts = random_plaintexts(n_traces, seed=42)
    summary: dict[str, float | int | str | bool] = {
        "threshold": T_THRESHOLD, "n_traces_per_set": n_traces}
    series: dict[str, object] = {}
    for masking in ("none", "selective"):
        compiled = compile_des(spec, masking=masking)
        scout = des_run(compiled.program, KEY_A, PT_A, params=params)
        start, end = _secure_region(scout)
        tag = "unmasked" if masking == "none" else "masked"
        if streaming:
            campaign = streaming_assess_des_program(
                compiled.program, KEY_A, PT_A, plaintexts, params=params,
                window=(start, end), jobs=jobs)
            result = campaign.result
            summary[f"{tag}_disclosure_traces"] = \
                campaign.disclosure_traces \
                if campaign.disclosure_traces is not None else "never"
            series[f"{tag}_disclosure_curve"] = [
                value if np.isfinite(value) else 0.0
                for value in campaign.curve.values]
        else:
            result = assess_des_program(compiled.program, KEY_A, PT_A,
                                        plaintexts, params=params,
                                        window=(start, end))
        max_t = result.max_abs_t
        summary[f"{tag}_max_abs_t"] = max_t if np.isfinite(max_t) \
            else float("inf")
        summary[f"{tag}_leaky_cycles"] = result.leaky_cycles
        summary[f"{tag}_passes"] = result.passes
    return ExperimentResult(
        experiment_id="ext-tvla",
        title="Extension: TVLA fixed-vs-random assessment of both devices",
        summary=summary,
        series=series,
        notes="The masked device's secured region is constant across "
              "inputs, so the t-statistic is identically zero — leakage "
              "assessment cannot distinguish any pair of inputs.")


def extension_disclosure(params: EnergyParams = DEFAULT_PARAMS,
                         n_traces: int = 48, jobs: int = 1,
                         chunk_size: int = 16) -> ExperimentResult:
    """Extension: traces-to-disclosure under the randomized-power defense.

    The streaming answer to "how long do Figs. 8/9 stay true at attack
    scale?": the same key pair (A vs C) is measured ``n_traces`` times
    per key under Gaussian power noise — calibrated from a scout
    differential so one trace is far below the TVLA threshold — and the
    Welch-t disclosure curve records how the evidence accumulates.  The
    unmasked device discloses after a bounded number of traces (noise
    only delays averaging, as the paper's Section 1 argues); the masked
    device's secured region has a *zero* true differential, so its |t|
    never crosses 4.5 no matter the budget.  Runs in O(1) trace memory
    through :func:`repro.harness.engine.run_stream`.
    """
    from ..attacks.tvla import T_THRESHOLD, streaming_key_differential

    spec = DesProgramSpec(rounds=1)
    summary: dict[str, float | int | str | bool] = {
        "threshold": T_THRESHOLD, "n_traces_per_key": n_traces}
    series: dict[str, object] = {}
    # Calibrate the noise to the unmasked leak: σ = Δ_max/2 puts a
    # single-trace |t| well under threshold but lets ~10 trace pairs
    # average it back out (t ≈ (Δ/σ)·√(n/2)).
    unmasked = compile_des(spec, masking="none")
    scout_a = des_run(unmasked.program, KEY_A, PT_A, params=params)
    scout_b = des_run(unmasked.program, KEY_C, PT_A, params=params)
    start, end = _secure_region(scout_a)
    delta_max = float(np.abs(
        scout_a.trace.diff(scout_b.trace)[start:end]).max())
    noise_sigma = max(delta_max / 2.0, 1e-6)
    summary["scout_max_abs_diff_pj"] = delta_max
    summary["noise_sigma_pj"] = noise_sigma
    for masking in ("none", "selective"):
        compiled = unmasked if masking == "none" \
            else compile_des(spec, masking=masking)
        scout = scout_a if masking == "none" \
            else des_run(compiled.program, KEY_A, PT_A, params=params)
        window = _secure_region(scout)
        campaign = streaming_key_differential(
            compiled.program, KEY_A, KEY_C, PT_A, n_traces, params=params,
            window=window, noise_sigma=noise_sigma, jobs=jobs,
            chunk_size=chunk_size)
        tag = "unmasked" if masking == "none" else "masked"
        disclosed = campaign.disclosure_traces
        summary[f"{tag}_disclosure_traces"] = disclosed \
            if disclosed is not None else "never"
        summary[f"{tag}_discloses"] = disclosed is not None
        summary[f"{tag}_final_max_abs_t"] = campaign.curve.final_value
        summary[f"{tag}_traces_consumed"] = campaign.traces_consumed
        series[f"{tag}_disclosure_curve"] = list(campaign.curve.values)
        series[f"{tag}_disclosure_checkpoints"] = [
            float(c) for c in campaign.curve.checkpoints]
    return ExperimentResult(
        experiment_id="ext-disclosure",
        title="Extension: traces-to-disclosure curves under power noise "
              "(unmasked vs masked)",
        summary=summary,
        series=series,
        notes="Noise forces the attacker to average, but only delays the "
              "unmasked disclosure; the masked differential is identically "
              "zero, so more traces sharpen the estimate of nothing.")


def extension_sensitivity(params: EnergyParams = DEFAULT_PARAMS,
                          rounds: int = 2, jobs: int = 1, retries: int = 0,
                          job_timeout: Optional[float] = None,
                          checkpoint: Optional[str] = None
                          ) -> ExperimentResult:
    """Extension: sensitivity of the headline comparison to calibration.

    Sweeps each technology parameter over [0.5x, 2x] and re-measures the
    four-policy totals: the policy ordering and a positive overhead saving
    must hold at every point — the paper's conclusion is structural, not a
    calibration artifact.
    """
    from .sweeps import SWEEPABLE, sensitivity_sweep

    summary: dict[str, float | int | str | bool] = {}
    all_ordered = True
    worst_saving = 1.0
    for parameter in SWEEPABLE:
        sweep = sensitivity_sweep(parameter, base_params=params,
                                  rounds=rounds, jobs=jobs, retries=retries,
                                  job_timeout=job_timeout,
                                  checkpoint=_subcheckpoint(checkpoint,
                                                            parameter))
        summary[f"{parameter}_ordered"] = sweep.always_ordered
        summary[f"{parameter}_saving_range"] = (
            f"{sweep.min_saving:.2f}..{sweep.max_saving:.2f}")
        all_ordered &= sweep.always_ordered
        worst_saving = min(worst_saving, sweep.min_saving)
    summary["all_parameters_preserve_ordering"] = all_ordered
    summary["worst_case_overhead_saving"] = worst_saving
    return ExperimentResult(
        experiment_id="ext-sensitivity",
        title="Extension: sensitivity of the policy comparison to the "
              "energy calibration",
        summary=summary,
        notes="Ratios move with the parameters, but selective masking "
              "stays strictly cheaper than naive and whole-program "
              "dual-rail across a 4x range of every capacitance.")


def ablation_operand_isolation(params: EnergyParams = DEFAULT_PARAMS
                               ) -> ExperimentResult:
    """Ablation: the stale-register side channel and operand isolation.

    A subtlety beyond the paper's instruction-level model: the ID stage of
    a classic five-stage pipeline latches register-file reads that the
    forwarding network later overrides.  With register reuse, the stale
    value can be a *secret* left behind by an earlier secure instruction,
    and it transits the ID/EX latch of an insecure instruction — a leak no
    secure-instruction selection can express.  Operand isolation (gating
    reads that forwarding will supply; control depends only on register
    numbers) closes the channel.  This experiment runs the masked DES with
    the gating disabled and re-measures the key differential.
    """
    compiled = compile_des(DesProgramSpec(rounds=1), masking="selective")
    summary: dict[str, float | int | str | bool] = {}
    for label, isolation in (("with_isolation", True),
                             ("without_isolation", False)):
        runs = []
        for key in (KEY_A, KEY_C):
            from ..programs.workloads import key_words, plaintext_words
            from .runner import run_with_trace

            runs.append(run_with_trace(
                compiled.program,
                inputs={"key": key_words(key),
                        "plaintext": plaintext_words(PT_A)},
                params=params, operand_isolation=isolation))
        diff = runs[0].trace.diff(runs[1].trace)
        start = runs[0].trace.marker_cycles(mk.M_KEYPERM_START)[0]
        end = runs[0].trace.marker_cycles(mk.M_FP_START)[0]
        window = diff[start:end]
        summary[f"{label}_max_abs_diff_pj"] = float(np.abs(window).max())
        summary[f"{label}_nonzero_cycles"] = int(np.count_nonzero(window))
    summary["isolation_required"] = \
        summary["with_isolation_max_abs_diff_pj"] == 0.0 \
        and summary["without_isolation_max_abs_diff_pj"] > 0.0
    return ExperimentResult(
        experiment_id="ablation-isolation",
        title="Ablation: stale-register leakage without operand isolation",
        summary=summary,
        notes="Without gating, secrets left in reused registers transit "
              "the ID/EX latch of insecure instructions; the masked "
              "differential is small but nonzero — enough for DPA, which "
              "averages away nothing that is deterministic.")


#: Registry: experiment id -> callable.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig6": fig06_rounds_trace,
    "fig7": fig07_key_diff_round1,
    "fig8": fig08_key_diff_unmasked,
    "fig9": fig09_key_diff_masked,
    "fig10": fig10_pt_diff_unmasked,
    "fig11": fig11_pt_diff_masked,
    "fig12": fig12_masking_overhead,
    "tab1": tab1_policy_energy,
    "xor-op": xor_unit_energy,
    "dpa": dpa_experiment,
    "ablation-slice": ablation_no_slicing,
    "ablation-components": ablation_components,
    "ablation-isolation": ablation_operand_isolation,
    "ext-aes": extension_aes,
    "ext-opt": extension_optimizer,
    "ext-coupling": extension_coupling,
    "ext-noise": extension_noise,
    "ext-tvla": extension_tvla,
    "ext-disclosure": extension_disclosure,
    "ext-sensitivity": extension_sensitivity,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id.

    With the observability sink enabled the experiment runs under an
    ``experiment`` span (jobs/compiles/executions nest beneath it) and
    bumps ``experiments_run{experiment=...}``.
    """
    from .. import obs

    try:
        function = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: "
                       f"{sorted(EXPERIMENTS)}") from None
    with obs.span("experiment", id=experiment_id):
        result = function(**kwargs)
    if obs.enabled():
        obs.counter("experiments_run", "registered experiments executed") \
            .inc(experiment=experiment_id)
        if result.leakage is not None:
            result.leakage.publish_metrics(obs.registry())
    return result
