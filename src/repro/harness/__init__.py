"""Experiment harness: runners, batch engine, registry, and reporting."""

from .engine import (CompileCache, CompileRequest, JobResult, SimJob,
                     run_jobs)
from .experiments import (EXPERIMENTS, ExperimentResult, KEY_A, KEY_B_BIT1,
                          KEY_C, PAPER_TOTALS_UJ, PT_A, PT_B, run_experiment)
from .io import (load_experiment_json, load_trace, load_trace_set,
                 save_experiment_json, save_summary_csv, save_trace,
                 save_trace_set)
from .profiling import (BatchProfile, component_breakdown, des_phase_labels,
                        job_timings, phase_energy, profile_batch)
from .report import (ascii_table, series_preview, sparkline,
                     summarize_series)
from .resilience import (BatchError, FaultInjected, JobFailure, JobTimeout,
                         require_results)
from .sweeps import measure_policies, sensitivity_sweep
from .runner import RunResult, des_run, run_with_trace

__all__ = [
    "BatchError", "BatchProfile", "CompileCache", "CompileRequest",
    "EXPERIMENTS",
    "ExperimentResult", "FaultInjected", "JobFailure", "JobResult",
    "JobTimeout", "KEY_A", "KEY_B_BIT1", "KEY_C",
    "PAPER_TOTALS_UJ", "PT_A", "PT_B", "RunResult", "SimJob", "ascii_table",
    "component_breakdown", "des_phase_labels", "des_run", "job_timings",
    "load_experiment_json", "load_trace", "load_trace_set",
    "measure_policies", "phase_energy", "profile_batch",
    "require_results", "run_jobs",
    "sensitivity_sweep",
    "run_experiment", "run_with_trace", "save_experiment_json",
    "save_summary_csv", "save_trace", "save_trace_set", "series_preview",
    "sparkline",
    "summarize_series",
]
