"""Parallel batch execution engine for independent simulations.

Every headline result in this reproduction is built from many *independent*
cycle-accurate runs: DPA collects one trace per plaintext, the sensitivity
sweep re-measures the four masking policies at 35 parameter points, and the
experiment registry re-runs the same few programs with varied inputs.  This
module fans such batches across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the results **bit-identical** to the serial path:

* jobs are declarative :class:`SimJob` records, so the work ships cleanly
  to worker processes and each job carries its own noise seed — the
  injected Gaussian noise stream never depends on scheduling order;
* results come back as :class:`JobResult` in **submission order**, whatever
  order the workers finish in;
* a :class:`CompileCache` memoizes compile/assemble artifacts per process
  *and* on disk (atomic writes), so a pool of workers compiles each
  ``(spec, masking, policy, optimize)`` variant once instead of once per
  sweep point per process;
* batches survive faults: ``failure_policy``/``retries``/``job_timeout``
  and the ``checkpoint`` journal delegate to
  :mod:`repro.harness.resilience`, so one crashed worker, one runaway
  simulation, or one ``BrokenProcessPool`` no longer discards the batch.

``run_jobs(batch, jobs=1)`` is the single entry point; ``jobs=1`` executes
in-process with behavior identical to calling the runner directly.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from .. import obs
from ..obs import progress as obs_progress
from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..energy.trace import EnergyTrace
from ..isa.program import Program
from ..masking.policy import MaskingPolicy, apply_policy

logger = logging.getLogger("repro.harness.engine")


_FINGERPRINT: Optional[str] = None


def _toolchain_fingerprint() -> str:
    """Digest of the toolchain sources (sizes + mtimes), computed once.

    Editing the compiler, assembler, source generators, or masking
    policies invalidates every on-disk artifact, so a stale cache
    directory can only ever miss — never serve outdated code.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for subpackage in ("lang", "isa", "programs", "masking", "des",
                           "aes"):
            directory = package_root / subpackage
            try:
                entries = sorted(directory.glob("*.py"))
            except OSError:
                continue
            for entry in entries:
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                digest.update(f"{entry.name}:{stat.st_size}:"
                              f"{stat.st_mtime_ns};".encode())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


@dataclass(frozen=True)
class CompileRequest:
    """Identity of a compilable program variant — the compile-cache key.

    ``spec`` is a frozen :class:`~repro.programs.des_source.DesProgramSpec`
    (or :class:`~repro.programs.aes_source.AesProgramSpec` with
    ``cipher="aes"``); ``None`` means the cipher's default spec.  ``policy``
    optionally applies an assembly-level masking rewrite *after*
    compilation (the Section 4.3 whole-program policies).
    """

    cipher: str = "des"
    spec: Optional[object] = None
    masking: str = "selective"
    policy: Optional[MaskingPolicy] = None
    optimize: int = 0

    def cache_key(self) -> str:
        """Stable digest of everything the compiled artifact depends on."""
        from .. import __version__

        policy = self.policy.name if self.policy is not None else "-"
        text = "|".join((__version__, _toolchain_fingerprint(), self.cipher,
                         repr(self.spec), self.masking, policy,
                         str(self.optimize)))
        return hashlib.sha256(text.encode()).hexdigest()[:32]

    def compile(self) -> Program:
        """Compile (uncached) the requested program image."""
        from ..programs.workloads import compile_aes, compile_des

        if self.cipher == "des":
            from ..programs.des_source import DesProgramSpec

            spec = self.spec if self.spec is not None else DesProgramSpec()
            compiled = compile_des(spec, masking=self.masking,
                                   optimize=self.optimize)
        elif self.cipher == "aes":
            from ..programs.aes_source import AesProgramSpec

            spec = self.spec if self.spec is not None else AesProgramSpec()
            compiled = compile_aes(spec, masking=self.masking,
                                   optimize=self.optimize)
        else:
            raise ValueError(f"unknown cipher {self.cipher!r}")
        program = compiled.program
        if self.policy is not None:
            program = apply_policy(program, self.policy)
        return program


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`CompileCache` instance."""

    hits: int = 0
    misses: int = 0
    #: Disk-layer write failures (EACCES, ENOSPC, ...).  The first one
    #: degrades the instance to memory-only writes.
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class CompileCache:
    """Process-safe compile/assemble artifact cache.

    Two layers: a per-process memo dict, and a shared on-disk layer of
    pickled :class:`~repro.isa.program.Program` images written atomically
    (temp file + ``os.replace``) so concurrent pool workers never observe a
    partial artifact.  Keys include the package version, a fingerprint of
    the toolchain sources, and the full ``repr`` of the program spec, so a
    stale cache directory can only ever miss, not serve wrong code.  The
    directory defaults to ``$REPRO_COMPILE_CACHE_DIR`` or
    ``<tmpdir>/repro-compile-cache``; setting the variable to an empty
    string disables the disk layer (memory memoization only).

    Corrupt artifacts are **quarantined**: an entry that exists but does
    not unpickle is renamed to ``<key>.corrupt`` (best-effort) so every
    later process recompiles once instead of re-reading the bad file
    forever; stale ``*.tmp`` files left by crashed writers are swept on
    construction.

    A disk layer that stops accepting writes (read-only mount → EACCES,
    full volume → ENOSPC) **degrades to memory-only writes** after the
    first failure — one warning, a ``compile_cache_disk_errors`` obs
    counter, and no further write attempts — instead of paying a failed
    syscall per compile forever.  Reads are still attempted: a read-only
    cache keeps serving hits.
    """

    #: ``*.tmp`` files older than this are presumed orphaned by a crashed
    #: writer (a live writer holds its temp file for milliseconds).
    STALE_TMP_S = 300.0

    def __init__(self, directory: Optional[Path] = None):
        if directory is None:
            configured = os.environ.get("REPRO_COMPILE_CACHE_DIR")
            if configured == "":
                directory = None
            elif configured:
                directory = Path(configured)
            else:
                directory = Path(tempfile.gettempdir()) \
                    / "repro-compile-cache"
        self.directory = Path(directory) if directory is not None else None
        self.memory: dict[str, object] = {}
        self.stats = CacheStats()
        #: Set after the first disk write failure; writes stop, reads
        #: continue (see the class docstring).
        self.disk_write_disabled = False
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Delete orphaned writer temp files (crashed mid-store)."""
        if self.directory is None:
            return
        try:
            candidates = list(self.directory.glob("*.tmp"))
        except OSError:
            return
        cutoff = time.time() - self.STALE_TMP_S
        for candidate in candidates:
            try:
                if candidate.stat().st_mtime < cutoff:
                    candidate.unlink()
            except OSError:
                pass  # another process may have swept it first

    def program_for(self, request: CompileRequest) -> Program:
        """Return the compiled image, from memory, disk, or a fresh build."""
        key = request.cache_key()
        program = self.memory.get(key)
        if program is not None:
            self.stats.hits += 1
            return program
        program = self._load(key)
        if program is not None:
            self.stats.hits += 1
        else:
            program = request.compile()
            self.stats.misses += 1
            self._store(key, program)
        self.memory[key] = program
        return program

    def artifact(self, key: str) -> Optional[object]:
        """Look up a non-compile artifact (e.g. a recorded cycle schedule)
        by its full cache key; memory first, then the disk layer.  Misses
        return ``None`` and are not counted in :attr:`stats` — artifact
        producers handle their own build-on-miss.
        """
        artifact = self.memory.get(key)
        if artifact is not None:
            return artifact
        artifact = self._load(key)
        if artifact is not None:
            self.memory[key] = artifact
        return artifact

    def store_artifact(self, key: str, artifact: object) -> None:
        """Store a non-compile artifact under ``key`` (memory + disk)."""
        self.memory[key] = artifact
        self._store(key, artifact)

    def _load(self, key: str) -> Optional[object]:
        if self.directory is None:
            return None
        path = self.directory / f"{key}.pkl"
        try:
            payload = path.read_bytes()
        except OSError:
            return None  # plain miss (or unreadable: nothing to salvage)
        try:
            return pickle.loads(payload)
        except (pickle.PickleError, EOFError, AttributeError, ValueError,
                TypeError, IndexError, ImportError):
            self._quarantine(path)
            return None

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt artifact aside so it is recompiled exactly once.

        ``os.replace`` is atomic, so concurrent readers either still see
        the corrupt file (and also try to quarantine it — idempotent) or
        see a clean miss.  Best-effort: on a read-only cache the corrupt
        entry simply stays a per-process miss.
        """
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    def _store(self, key: str, artifact: object) -> None:
        if self.directory is None or self.disk_write_disabled:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(dir=self.directory,
                                                 suffix=".tmp")
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(artifact, stream)
            os.replace(temp_name, self.directory / f"{key}.pkl")
        except OSError as error:
            # Caching is best-effort (the compile already succeeded), but
            # a dead disk layer should fail once, loudly, not per store.
            self.disk_write_disabled = True
            self.stats.disk_errors += 1
            logger.warning(
                "compile cache %s: disk write failed (%s); continuing "
                "memory-only for this process", self.directory, error)
            if obs.enabled():
                obs.counter("compile_cache_disk_errors",
                            "compile caches degraded to memory-only after "
                            "a disk write failure").inc()


_DEFAULT_CACHE: Optional[CompileCache] = None


def default_cache() -> CompileCache:
    """The process-wide cache used for :class:`CompileRequest` jobs."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = CompileCache()
    return _DEFAULT_CACHE


@dataclass
class SimJob:
    """One independent simulation: what to run, on what, under what model.

    ``program`` is either a prebuilt :class:`~repro.isa.program.Program`
    (pickled to the worker as-is) or a :class:`CompileRequest` resolved
    through the worker's :class:`CompileCache`.  ``des_pair`` is the
    ``(key64, plaintext64)`` convenience encoding used by the DES/AES
    workloads; ``inputs`` writes raw symbol words.  ``noise_seed`` is fixed
    per job so parallel execution replays the exact serial noise stream.
    """

    program: Union[Program, CompileRequest]
    inputs: Optional[dict[str, list[int]]] = None
    des_pair: Optional[tuple[int, int]] = None
    params: EnergyParams = DEFAULT_PARAMS
    noise_sigma: float = 0.0
    noise_seed: int = 0
    label: str = ""
    collect_components: bool = False
    operand_isolation: bool = True
    max_cycles: int = 50_000_000
    #: Execution engine: a :mod:`repro.machine.engines` registry name
    #: (``"fast"`` — schedule replay with automatic reference fallback,
    #: ``"vector"`` — batch-native NumPy replay, ``"reference"``), or
    #: ``None`` for the ambient default (``$REPRO_ENGINE``, else
    #: ``"fast"``).
    engine: Optional[str] = None
    #: Force the observability sink on for this job regardless of the
    #: process-wide flag.  Rides on the pickled job, so pool workers —
    #: fresh processes that never saw the submitter's thread-local
    #: forced scope — still record and ship their span trees.  The
    #: request-scoped tracing path of the service daemon sets this.
    observe: bool = False
    #: Force per-PC energy attribution on for this job (implies
    #: ``observe``); same propagation story as ``observe``.
    attribute: bool = False


@dataclass
class JobResult:
    """A finished :class:`SimJob`, reduced to picklable observables.

    Carries everything the batch callers consume — the per-cycle energy
    vector, phase markers, per-component totals — plus the observability
    fields: per-job wall time and whether the compile cache hit
    (``cache_hit is None`` when the job shipped a prebuilt program).

    When the observability sink is enabled (:mod:`repro.obs`), the worker
    additionally serializes its scoped metrics snapshot and span tree
    here; :func:`run_jobs` merges them into the parent's registry in
    submission order, so the aggregate is deterministic regardless of
    worker scheduling.
    """

    label: str
    cycles: int
    energy: np.ndarray
    markers: tuple[tuple[int, int], ...] = ()
    totals: dict[str, float] = field(default_factory=dict)
    components: Optional[np.ndarray] = None
    wall_time_s: float = 0.0
    cache_hit: Optional[bool] = None
    #: Scoped per-job metrics snapshot (observability sink enabled only).
    metrics: Optional[dict] = None
    #: Scoped per-job span tree (observability sink enabled only).
    spans: Optional[list] = None
    #: Per-component event counts (accesses/operations) of the run.
    counts: dict[str, int] = field(default_factory=dict)
    #: Scoped per-job attribution snapshot (attribution enabled only).
    attribution: Optional[dict] = None
    #: Engine that actually produced the trace: a registry name
    #: (``"fast"``, ``"vector"``, ``"reference"``) or
    #: ``"<requested>-fallback"`` when the requested engine declined the
    #: run and it was re-run down the fallback chain.
    engine: str = "reference"

    @property
    def total_pj(self) -> float:
        return float(self.energy.sum())

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    @property
    def average_pj(self) -> float:
        return self.total_pj / self.cycles if self.cycles else 0.0

    @property
    def trace(self) -> EnergyTrace:
        """The run's energy trace, reconstructed for phase navigation."""
        return EnergyTrace(energy=self.energy, markers=self.markers,
                           components=self.components, label=self.label)


def execute_job(job: SimJob) -> JobResult:
    """Run one job in the current process (the workers' entry point).

    With the observability sink enabled — process-wide, via the calling
    thread's forced scope, or via the job's own ``observe``/``attribute``
    flags — the job runs inside a fresh :func:`repro.obs.scope` — a
    ``job`` span wrapping ``compile`` and ``execute`` — and ships the
    scoped snapshot/span tree back on the :class:`JobResult` for the
    parent to merge.
    """
    force = job.observe or job.attribute
    if (not force and not obs.enabled()
            and not obs.attribution_enabled()):
        return _execute_job_inner(job)
    with obs.scope(force=force, attribution=job.attribute) as scoped:
        with obs.span("job", label=job.label):
            result = _execute_job_inner(job)
        result.metrics = scoped.registry.snapshot()
        result.spans = scoped.tracer.tree()
        if scoped.attribution:
            result.attribution = scoped.attribution.snapshot()
    return result


def _execute_job_inner(job: SimJob) -> JobResult:
    from .runner import run_with_trace

    observing = obs.enabled()
    start = time.perf_counter()
    cache_hit = None
    program = job.program
    if isinstance(program, CompileRequest):
        with obs.span("compile", cipher=job.program.cipher,
                      masking=job.program.masking):
            cache = default_cache()
            hits_before = cache.stats.hits
            program = cache.program_for(job.program)
            cache_hit = cache.stats.hits > hits_before
        if observing:
            obs.counter("compile_cache_lookups",
                        "compile cache resolutions by outcome") \
                .inc(result="hit" if cache_hit else "miss")
    elif observing:
        obs.counter("jobs_prebuilt",
                    "jobs that shipped a prebuilt program").inc()
    inputs = dict(job.inputs) if job.inputs else {}
    if job.des_pair is not None:
        from ..programs.workloads import key_words, plaintext_words

        key64, plaintext64 = job.des_pair
        inputs["key"] = key_words(key64)
        if "plaintext" in program.symbols:
            inputs["plaintext"] = plaintext_words(plaintext64)
    run = run_with_trace(program, inputs=inputs or None, params=job.params,
                         collect_components=job.collect_components,
                         label=job.label, max_cycles=job.max_cycles,
                         noise_sigma=job.noise_sigma,
                         noise_seed=job.noise_seed,
                         operand_isolation=job.operand_isolation,
                         engine=job.engine)
    return JobResult(label=job.label, cycles=run.cycles,
                     energy=run.trace.energy, markers=run.trace.markers,
                     totals=dict(run.tracker.totals),
                     components=run.trace.components,
                     wall_time_s=time.perf_counter() - start,
                     cache_hit=cache_hit,
                     counts=dict(run.tracker.counts),
                     engine=run.engine)


def run_jobs(batch: Sequence[SimJob], jobs: int = 1,
             progress: Optional[Callable[[int, int], None]] = None, *,
             failure_policy: str = "raise", retries: int = 2,
             job_timeout: Optional[float] = None,
             checkpoint: Optional[Union[str, Path]] = None,
             engine: Optional[str] = None) -> list:
    """Execute a batch of independent jobs, preserving submission order.

    ``jobs=1`` (the default) runs serially in-process — identical to
    calling the runner in a loop.  ``jobs>1`` fans the batch across a
    process pool; because every job is self-contained and carries its own
    noise seed, the collected results are bit-identical to the serial path
    regardless of worker scheduling.  ``progress(done, total)`` is invoked
    after each completion (in completion order under a pool).

    Fault tolerance (see :mod:`repro.harness.resilience`):

    * ``failure_policy`` — ``"raise"`` (default) re-raises the first
      failure after cancelling pending work; ``"collect"`` puts a
      :class:`~repro.harness.resilience.JobFailure` in the failed job's
      slot and keeps going; ``"retry"`` re-runs failures up to
      ``retries`` more times with deterministic jittered backoff, then
      collects whatever still fails.
    * ``job_timeout`` — per-job wall-clock bound (seconds): an alarm
      inside the worker plus a parent-side deadline that kills and
      rebuilds a wedged pool.
    * ``checkpoint`` — path to an append-only journal keyed by the
      batch's content digest; completed jobs are skipped on resume.

    A broken pool is rebuilt and only unfinished jobs are resubmitted;
    if the pool cannot be created at all the batch degrades to serial
    execution with a logged warning.

    ``engine`` (a :mod:`repro.machine.engines` registry name) overrides
    the execution engine of every job in the batch; ``None`` leaves each
    job's own setting (and the ambient ``$REPRO_ENGINE`` default) in
    effect.

    When every job in the batch resolves to the same engine and that
    engine declares a whole-batch entry point (``vector``), the batch is
    handed to it in one call instead of per-job dispatch — results stay
    bit-identical and in submission order.  The engine may decline
    (heterogeneous jobs, unsupported program, divergence), in which case
    the batch silently takes the per-job path below.
    """
    from .resilience import execute_batch, validate_batch_options

    validate_batch_options(failure_policy, retries)
    batch = list(batch)
    if engine is not None:
        from ..machine.engines import resolve

        resolved = resolve(engine)
        for job in batch:
            job.engine = resolved
    # Opt-in live telemetry: $REPRO_PROGRESS turns the batch into a
    # heartbeat source.  No reporter is built when the env is unset or an
    # outer campaign already owns one (run_stream's chunks must not
    # double-count), so the default path is untouched.
    reporter = obs_progress.reporter_from_env(len(batch), label="run_jobs")
    if reporter is not None:
        user_progress = progress

        def progress(done, total, _reporter=reporter,
                     _chained=user_progress):
            _reporter.job_done(done, total)
            if _chained is not None:
                _chained(done, total)

    with obs_progress.active(reporter):
        if checkpoint is None and job_timeout is None:
            native = _try_batch_native(batch, progress)
            if native is not None:
                if reporter is not None:
                    reporter.finish()
                return native
        results = execute_batch(list(batch), jobs=jobs, progress=progress,
                                failure_policy=failure_policy,
                                retries=retries, job_timeout=job_timeout,
                                checkpoint=checkpoint)
    _merge_observability(results)
    if reporter is not None:
        reporter.finish()
    return results


def _try_batch_native(batch: Sequence[SimJob],
                      progress: Optional[Callable[[int, int], None]],
                      ) -> Optional[list]:
    """Hand the whole batch to a batch-native engine, if one can take it.

    Returns submission-ordered :class:`JobResult` lists, or ``None`` when
    the batch must go through the per-job path: fewer than two jobs,
    observability/attribution enabled (those need per-job scopes and
    spans), mixed engines, an engine with no ``batch`` hook, jobs that
    disagree on the energy model or run limits, distinct program images,
    or the engine itself declining (divergence, unsupported program).
    Per-trace seeds, labels, and input pairs may vary freely — that is
    the batch shape DPA produces.
    """
    from ..machine import engines as engine_registry
    from .resilience import FAULT_PLAN_ENV

    if len(batch) < 2:
        return None
    if obs.enabled() or obs.attribution_enabled():
        return None
    if any(job.observe or job.attribute for job in batch):
        # Per-request tracing travels on the jobs themselves; those need
        # per-job scopes and spans, which the batch hook cannot record.
        return None
    if os.environ.get(FAULT_PLAN_ENV):
        # Deterministic fault injection targets per-job execution; keep
        # the resilience machinery in the loop when a plan is active.
        return None
    try:
        resolved = {engine_registry.resolve(job.engine) for job in batch}
    except ValueError:
        return None  # per-job path raises the canonical error
    if len(resolved) != 1:
        return None
    spec = engine_registry.get(resolved.pop())
    if spec.batch is None:
        return None
    job0 = batch[0]
    for job in batch[1:]:
        if (job.params != job0.params
                or job.noise_sigma != job0.noise_sigma
                or job.operand_isolation != job0.operand_isolation
                or job.collect_components != job0.collect_components
                or job.max_cycles != job0.max_cycles):
            return None
    cache_hit = None
    programs = []
    for job in batch:
        if isinstance(job.program, CompileRequest):
            cache = default_cache()
            hits_before = cache.stats.hits
            programs.append(cache.program_for(job.program))
            if cache_hit is None:
                cache_hit = cache.stats.hits > hits_before
        else:
            programs.append(job.program)
    program = programs[0]
    if any(other is not program for other in programs[1:]):
        return None
    results = spec.batch(batch, program, cache_hit)
    if results is not None and progress is not None:
        total = len(batch)
        for done in range(total):
            progress(done + 1, total)
    return results


def run_stream(batch: Sequence[SimJob],
               consume: Callable[[int, JobResult], None], jobs: int = 1, *,
               chunk_size: int = 64,
               progress: Optional[Callable[[int, int], None]] = None,
               failure_policy: str = "raise", retries: int = 2,
               job_timeout: Optional[float] = None,
               engine: Optional[str] = None,
               reporter: Optional[obs_progress.ProgressReporter] = None,
               ) -> int:
    """Execute a batch in bounded memory, streaming results to a consumer.

    The campaign-scale twin of :func:`run_jobs`: the batch is executed in
    chunks of ``chunk_size`` jobs, and each finished
    :class:`JobResult` is handed to ``consume(index, result)`` — in
    submission order, under any ``jobs`` count — then dropped.  Peak
    memory is ``O(chunk_size)`` results instead of ``O(len(batch))``, so
    a 10⁶-trace TVLA campaign folds into streaming accumulators
    (:mod:`repro.obs.streaming`) without ever materializing the trace
    matrix.  Because consumption order is fixed, accumulator state — and
    therefore the campaign statistics — is bit-identical for ``jobs=1``
    and ``jobs=N``.

    ``reporter`` (or ``$REPRO_PROGRESS``) enables live heartbeats; a
    forced heartbeat is emitted at every chunk boundary, so long
    campaigns report at least once per ``chunk_size`` jobs even when the
    rate-limit interval has not elapsed.  Under ``failure_policy
    "collect"``/``"retry"``, failed slots reach the consumer as
    :class:`~repro.harness.resilience.JobFailure` records — consumers
    that only want clean traces should skip non-:class:`JobResult`
    values.  Returns the number of slots consumed.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    batch = list(batch)
    total = len(batch)
    owns_reporter = False
    if reporter is None:
        reporter = obs_progress.reporter_from_env(total, label="run_stream")
        owns_reporter = reporter is not None
    if reporter is not None:
        reporter.total = total
    consumed = 0
    with obs_progress.active(reporter):
        for start in range(0, total, chunk_size):
            chunk = batch[start:start + chunk_size]

            def chunk_progress(done, _chunk_total, _base=start):
                completed = _base + done
                if reporter is not None:
                    reporter.job_done(completed, total)
                if progress is not None:
                    progress(completed, total)

            results = run_jobs(chunk, jobs=jobs, progress=chunk_progress,
                               failure_policy=failure_policy,
                               retries=retries, job_timeout=job_timeout,
                               engine=engine)
            for offset, result in enumerate(results):
                consume(start + offset, result)
            consumed += len(results)
            if reporter is not None:
                reporter.done = start + len(chunk)
                reporter.heartbeat(force=True)
    if owns_reporter:
        reporter.finish()
    return consumed


def _merge_observability(results: Sequence) -> None:
    """Fold per-job scoped metrics/spans into the caller's context.

    Always in submission order, so the aggregated registry and span tree
    are identical for ``jobs=1`` and any worker count.  Additionally
    records a wall-time histogram of the batch's jobs.  Failure slots
    (:class:`~repro.harness.resilience.JobFailure`) carry no scoped
    metrics and are skipped.
    """
    if not obs.enabled() and not obs.attribution_enabled():
        return
    registry = obs.registry()
    tracer = obs.tracer()
    attribution = obs.attribution()
    wall = registry.histogram("job_wall_seconds",
                              "per-job wall time inside the worker")
    for result in results:
        if not isinstance(result, JobResult):
            continue
        wall.observe(result.wall_time_s)
        if result.metrics:
            registry.merge_snapshot(result.metrics)
        if result.spans:
            tracer.attach(result.spans)
        if result.attribution:
            attribution.merge_snapshot(result.attribution)
