"""Energy profiling: where do the picojoules go?

Breaks a run's energy down two ways:

* **by program phase**, using the markers the program emitted (the DES
  program marks IP, key permutation, each round, and FP);
* **by datapath component**, using the tracker's per-component totals.

Also the observability surface of the batch engine: per-job wall times and
compile-cache hit/miss counters, aggregated from a batch of
:class:`~repro.harness.engine.JobResult` records.

Used by the trace-inspection example and by ablation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..energy.trace import EnergyTrace
from ..energy.tracker import COMPONENTS
from ..obs.registry import MetricsRegistry
from .runner import RunResult


@dataclass
class PhaseEnergy:
    label: str
    start_cycle: int
    end_cycle: int
    energy_pj: float

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def average_pj(self) -> float:
        return self.energy_pj / self.cycles if self.cycles else 0.0


def phase_energy(trace: EnergyTrace,
                 labels: dict[int, str] | None = None) -> list[PhaseEnergy]:
    """Split a trace at its markers and total the energy of each span.

    ``labels`` optionally maps marker values to phase names; unlabeled
    markers use ``marker=<value>``.  A leading pre-marker span and a
    trailing post-marker span are included when nonempty.

    When two markers land on the **same cycle** (a phase that compiled to
    zero instructions, e.g. a ``rounds=0`` spec emitting round-start and
    FP-start back to back), the earlier marker is emitted as a
    *zero-cycle* phase instead of being silently dropped — every marker
    the program fired appears in the profile, and the energies still sum
    to the trace total.
    """
    markers = sorted(trace.markers)
    phases: list[PhaseEnergy] = []

    def name_for(value: int) -> str:
        if labels and value in labels:
            return labels[value]
        return f"marker={value}"

    boundaries = [(0, "start")] + [(cycle, name_for(value))
                                   for cycle, value in markers] \
        + [(len(trace), "end")]
    for (start, label), (end, _) in zip(boundaries, boundaries[1:]):
        if end > start:
            phases.append(PhaseEnergy(
                label=label, start_cycle=start, end_cycle=end,
                energy_pj=float(trace.energy[start:end].sum())))
        elif label != "start":
            # Zero-length marker span: keep the label, carry no energy.
            phases.append(PhaseEnergy(label=label, start_cycle=start,
                                      end_cycle=start, energy_pj=0.0))
    return phases


def component_breakdown(run: RunResult) -> list[tuple[str, float, float]]:
    """(component, total_pj, fraction) rows from a finished run.

    Includes the injected-noise total as its own row when a noise
    countermeasure was active, so the fractions always sum to one.
    """
    totals = run.tracker.totals
    grand_total = sum(totals.values())
    names = list(COMPONENTS)
    if totals.get("noise"):
        names.append("noise")
    return [(name, totals.get(name, 0.0),
             totals.get(name, 0.0) / grand_total if grand_total else 0.0)
            for name in names]


@dataclass
class BatchProfile:
    """Aggregated observability for one engine batch.

    Built **on top of the metrics registry** (:mod:`repro.obs.registry`):
    :func:`profile_batch` folds every job into a scratch registry — a
    ``job_wall_seconds`` histogram plus ``compile_cache_lookups`` /
    ``jobs_prebuilt`` counters — and the profile's scalar fields are read
    back from it.  ``metrics`` carries the full registry snapshot so the
    profile can be embedded in a run manifest or merged with others.

    ``cache_hits``/``cache_misses`` count jobs resolved through the
    compile cache; ``cache_untracked`` counts jobs that shipped a prebuilt
    program (no cache involved).  Wall times are per-job, as measured
    inside the worker.
    """

    jobs: int
    total_wall_s: float
    mean_wall_s: float
    max_wall_s: float
    cache_hits: int
    cache_misses: int
    cache_untracked: int
    metrics: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "BatchProfile":
        """Derive the scalar profile from a registry filled per job."""
        wall = registry.histogram("job_wall_seconds").summary()
        lookups = registry.counter("compile_cache_lookups")
        prebuilt = registry.counter("jobs_prebuilt")
        return cls(jobs=int(wall["count"]),
                   total_wall_s=wall["sum"],
                   mean_wall_s=wall["mean"],
                   max_wall_s=wall["max"],
                   cache_hits=int(lookups.value(result="hit")),
                   cache_misses=int(lookups.value(result="miss")),
                   cache_untracked=int(prebuilt.value()),
                   metrics=registry.snapshot())

    def rows(self) -> list[tuple[str, str]]:
        """Human-readable (metric, value) rows for report tables."""
        return [
            ("jobs", str(self.jobs)),
            ("total wall", f"{self.total_wall_s:.3f} s"),
            ("mean wall/job", f"{self.mean_wall_s:.3f} s"),
            ("max wall/job", f"{self.max_wall_s:.3f} s"),
            ("compile cache", f"{self.cache_hits} hit / "
                              f"{self.cache_misses} miss / "
                              f"{self.cache_untracked} n/a"),
        ]


def profile_batch(results: Sequence) -> BatchProfile:
    """Aggregate :class:`~repro.harness.engine.JobResult` observability.

    Raises :class:`ValueError` on an empty batch: an all-zero profile is
    indistinguishable from a batch of instantaneous jobs, so callers must
    not silently receive one.
    """
    results = list(results)
    if not results:
        raise ValueError("profile_batch: empty batch (no JobResults); "
                         "nothing to profile")
    registry = MetricsRegistry()
    wall = registry.histogram("job_wall_seconds",
                              "per-job wall time inside the worker")
    lookups = registry.counter("compile_cache_lookups",
                               "compile cache resolutions by outcome")
    prebuilt = registry.counter("jobs_prebuilt",
                                "jobs that shipped a prebuilt program")
    for result in results:
        wall.observe(result.wall_time_s)
        if result.cache_hit is None:
            prebuilt.inc()
        else:
            lookups.inc(result="hit" if result.cache_hit else "miss")
    return BatchProfile.from_registry(registry)


def job_timings(results: Sequence) -> list[tuple[str, float]]:
    """Per-job ``(label, wall_time_s)`` pairs, slowest first."""
    return sorted(((result.label, result.wall_time_s) for result in results),
                  key=lambda pair: -pair[1])


def des_phase_labels(rounds: int = 16) -> dict[int, str]:
    """Marker labels for the generated DES/AES programs."""
    from ..programs import markers as mk

    labels = {
        mk.M_IP_START: "initial permutation",
        mk.M_IP_END: "(after IP)",
        mk.M_KEYPERM_START: "key permutation",
        mk.M_KEYPERM_END: "(after key perm)",
        mk.M_FP_START: "final permutation",
        mk.M_FP_END: "(after FP)",
    }
    for round_index in range(rounds):
        labels[mk.M_ROUND_BASE + round_index] = f"round {round_index + 1}"
    return labels
