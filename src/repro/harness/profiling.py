"""Energy profiling: where do the picojoules go?

Breaks a run's energy down two ways:

* **by program phase**, using the markers the program emitted (the DES
  program marks IP, key permutation, each round, and FP);
* **by datapath component**, using the tracker's per-component totals.

Used by the trace-inspection example and by ablation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.trace import EnergyTrace
from ..energy.tracker import COMPONENTS
from .runner import RunResult


@dataclass
class PhaseEnergy:
    label: str
    start_cycle: int
    end_cycle: int
    energy_pj: float

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def average_pj(self) -> float:
        return self.energy_pj / self.cycles if self.cycles else 0.0


def phase_energy(trace: EnergyTrace,
                 labels: dict[int, str] | None = None) -> list[PhaseEnergy]:
    """Split a trace at its markers and total the energy of each span.

    ``labels`` optionally maps marker values to phase names; unlabeled
    markers use ``marker=<value>``.  A leading pre-marker span and a
    trailing post-marker span are included when nonempty.
    """
    markers = sorted(trace.markers)
    phases: list[PhaseEnergy] = []

    def name_for(value: int) -> str:
        if labels and value in labels:
            return labels[value]
        return f"marker={value}"

    boundaries = [(0, "start")] + [(cycle, name_for(value))
                                   for cycle, value in markers] \
        + [(len(trace), "end")]
    for (start, label), (end, _) in zip(boundaries, boundaries[1:]):
        if end > start:
            phases.append(PhaseEnergy(
                label=label, start_cycle=start, end_cycle=end,
                energy_pj=float(trace.energy[start:end].sum())))
    return phases


def component_breakdown(run: RunResult) -> list[tuple[str, float, float]]:
    """(component, total_pj, fraction) rows from a finished run."""
    totals = run.tracker.totals
    grand_total = sum(totals.values())
    return [(name, totals[name],
             totals[name] / grand_total if grand_total else 0.0)
            for name in COMPONENTS]


def des_phase_labels(rounds: int = 16) -> dict[int, str]:
    """Marker labels for the generated DES/AES programs."""
    from ..programs import markers as mk

    labels = {
        mk.M_IP_START: "initial permutation",
        mk.M_IP_END: "(after IP)",
        mk.M_KEYPERM_START: "key permutation",
        mk.M_KEYPERM_END: "(after key perm)",
        mk.M_FP_START: "final permutation",
        mk.M_FP_END: "(after FP)",
    }
    for round_index in range(rounds):
        labels[mk.M_ROUND_BASE + round_index] = f"round {round_index + 1}"
    return labels
