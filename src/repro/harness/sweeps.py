"""Parameter sweeps and sensitivity analysis.

The headline claims are reproduced with a calibrated parameter set; a fair
question is whether they are artifacts of that calibration.  The
sensitivity sweep perturbs one technology parameter at a time across a
wide range and re-measures the four-policy comparison: the *ordering*
(none < selective < naive < all) and the sign of the overhead saving must
survive every perturbation, even though the exact ratios move.

Both :func:`measure_policies` and :func:`sensitivity_sweep` run through
:mod:`repro.harness.engine`: the four program variants are described as
:class:`~repro.harness.engine.CompileRequest` jobs, so the compile cache
builds each variant once for the whole sweep instead of once per point,
and ``jobs=N`` fans every ``factor × policy`` simulation across a process
pool with bit-identical results to the serial path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..masking.policy import MaskingPolicy
from ..programs.des_source import DesProgramSpec
from .engine import CompileRequest, SimJob, run_jobs
from .resilience import require_results

#: Parameters worth perturbing (each scaled by the sweep factors).
SWEEPABLE = ("c_data_bus", "c_latch_bit", "c_alu_node", "c_instr_bus",
             "e_clock_cycle", "e_regfile_port", "e_dummy_load")

#: The Section 4.3 policies as (name, compiler masking, assembly rewrite).
POLICY_VARIANTS = (
    ("none", "none", None),
    ("selective", "selective", None),
    ("all-loads-stores", "none", MaskingPolicy.ALL_LOADS_STORES),
    ("all", "none", MaskingPolicy.ALL),
)


@dataclass
class PolicyMeasurement:
    factor: float
    totals_uj: dict[str, float]

    @property
    def ordering_holds(self) -> bool:
        t = self.totals_uj
        return t["none"] < t["selective"] < t["all-loads-stores"] < t["all"]

    @property
    def overhead_saving(self) -> float:
        t = self.totals_uj
        denominator = t["all"] - t["none"]
        if denominator <= 0:
            return float("nan")
        return 1.0 - (t["selective"] - t["none"]) / denominator


@dataclass
class SweepResult:
    parameter: str
    measurements: list[PolicyMeasurement] = field(default_factory=list)

    @property
    def always_ordered(self) -> bool:
        return all(m.ordering_holds for m in self.measurements)

    def _finite_savings(self) -> list[float]:
        """Overhead savings excluding the NaN a degenerate point returns."""
        return [saving for m in self.measurements
                if not math.isnan(saving := m.overhead_saving)]

    @property
    def min_saving(self) -> float:
        finite = self._finite_savings()
        return min(finite) if finite else float("nan")

    @property
    def max_saving(self) -> float:
        finite = self._finite_savings()
        return max(finite) if finite else float("nan")


def policy_jobs(params: EnergyParams, rounds: int = 2,
                key: int = 0x133457799BBCDFF1,
                plaintext: int = 0x0123456789ABCDEF) -> list[SimJob]:
    """The four policy-comparison simulations as engine jobs."""
    spec = DesProgramSpec(rounds=rounds)
    return [SimJob(program=CompileRequest(spec=spec, masking=masking,
                                          policy=policy),
                   des_pair=(key, plaintext), params=params, label=name)
            for name, masking, policy in POLICY_VARIANTS]


def measure_policies(params: EnergyParams, rounds: int = 2,
                     key: int = 0x133457799BBCDFF1,
                     plaintext: int = 0x0123456789ABCDEF,
                     jobs: int = 1, retries: int = 0,
                     job_timeout: Optional[float] = None,
                     checkpoint: Optional[str] = None) -> dict[str, float]:
    """Total µJ for the four masking policies under given parameters.

    A comparison needs all four totals, so failures retry (``retries``)
    and anything that still fails raises
    :class:`~repro.harness.resilience.BatchError`.
    """
    results = run_jobs(policy_jobs(params, rounds=rounds, key=key,
                                   plaintext=plaintext), jobs=jobs,
                       failure_policy="retry" if retries else "raise",
                       retries=retries, job_timeout=job_timeout,
                       checkpoint=checkpoint)
    return {result.label: result.total_uj
            for result in require_results(results)}


def sensitivity_sweep(parameter: str,
                      factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5,
                                                    2.0),
                      base_params: EnergyParams = DEFAULT_PARAMS,
                      rounds: int = 2, jobs: int = 1, retries: int = 0,
                      job_timeout: Optional[float] = None,
                      checkpoint: Optional[str] = None) -> SweepResult:
    """Scale one parameter by each factor and re-measure the policies.

    With ``jobs>1`` every ``factor × policy`` simulation of the sweep is
    one pool job, so the whole sweep parallelizes — not just the four runs
    within a point.  ``checkpoint`` journals each completed point so an
    interrupted sweep resumes by recomputing only the unfinished jobs;
    ``retries``/``job_timeout`` bound worker faults and runaways (see
    :mod:`repro.harness.resilience`).
    """
    if parameter not in SWEEPABLE:
        raise ValueError(f"unknown sweep parameter {parameter!r}; "
                         f"choose from {SWEEPABLE}")
    batch: list[SimJob] = []
    for factor in factors:
        scaled = base_params.scaled(
            **{parameter: getattr(base_params, parameter) * factor})
        batch.extend(policy_jobs(scaled, rounds=rounds))
    results = require_results(
        run_jobs(batch, jobs=jobs,
                 failure_policy="retry" if retries else "raise",
                 retries=retries, job_timeout=job_timeout,
                 checkpoint=checkpoint))
    width = len(POLICY_VARIANTS)
    result = SweepResult(parameter=parameter)
    for position, factor in enumerate(factors):
        point = results[position * width:(position + 1) * width]
        totals = {job_result.label: job_result.total_uj
                  for job_result in point}
        result.measurements.append(PolicyMeasurement(factor=factor,
                                                     totals_uj=totals))
    return result
