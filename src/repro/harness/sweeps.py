"""Parameter sweeps and sensitivity analysis.

The headline claims are reproduced with a calibrated parameter set; a fair
question is whether they are artifacts of that calibration.  The
sensitivity sweep perturbs one technology parameter at a time across a
wide range and re-measures the four-policy comparison: the *ordering*
(none < selective < naive < all) and the sign of the overhead saving must
survive every perturbation, even though the exact ratios move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.params import DEFAULT_PARAMS, EnergyParams
from ..masking.policy import MaskingPolicy, apply_policy
from ..programs.des_source import DesProgramSpec
from ..programs.workloads import compile_des
from .runner import des_run

#: Parameters worth perturbing (each scaled by the sweep factors).
SWEEPABLE = ("c_data_bus", "c_latch_bit", "c_alu_node", "c_instr_bus",
             "e_clock_cycle", "e_regfile_port", "e_dummy_load")


@dataclass
class PolicyMeasurement:
    factor: float
    totals_uj: dict[str, float]

    @property
    def ordering_holds(self) -> bool:
        t = self.totals_uj
        return t["none"] < t["selective"] < t["all-loads-stores"] < t["all"]

    @property
    def overhead_saving(self) -> float:
        t = self.totals_uj
        denominator = t["all"] - t["none"]
        if denominator <= 0:
            return float("nan")
        return 1.0 - (t["selective"] - t["none"]) / denominator


@dataclass
class SweepResult:
    parameter: str
    measurements: list[PolicyMeasurement] = field(default_factory=list)

    @property
    def always_ordered(self) -> bool:
        return all(m.ordering_holds for m in self.measurements)

    @property
    def min_saving(self) -> float:
        return min(m.overhead_saving for m in self.measurements)

    @property
    def max_saving(self) -> float:
        return max(m.overhead_saving for m in self.measurements)


def measure_policies(params: EnergyParams, rounds: int = 2,
                     key: int = 0x133457799BBCDFF1,
                     plaintext: int = 0x0123456789ABCDEF
                     ) -> dict[str, float]:
    """Total µJ for the four masking policies under given parameters."""
    spec = DesProgramSpec(rounds=rounds)
    base = compile_des(spec, masking="none")
    selective = compile_des(spec, masking="selective")
    programs = {
        "none": base.program,
        "selective": selective.program,
        "all-loads-stores": apply_policy(base.program,
                                         MaskingPolicy.ALL_LOADS_STORES),
        "all": apply_policy(base.program, MaskingPolicy.ALL),
    }
    return {name: des_run(program, key, plaintext, params=params).total_uj
            for name, program in programs.items()}


def sensitivity_sweep(parameter: str,
                      factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5,
                                                    2.0),
                      base_params: EnergyParams = DEFAULT_PARAMS,
                      rounds: int = 2) -> SweepResult:
    """Scale one parameter by each factor and re-measure the policies."""
    if parameter not in SWEEPABLE:
        raise ValueError(f"unknown sweep parameter {parameter!r}; "
                         f"choose from {SWEEPABLE}")
    result = SweepResult(parameter=parameter)
    for factor in factors:
        scaled = base_params.scaled(
            **{parameter: getattr(base_params, parameter) * factor})
        totals = measure_policies(scaled, rounds=rounds)
        result.measurements.append(PolicyMeasurement(factor=factor,
                                                     totals_uj=totals))
    return result
