"""Semantic analysis: symbol table construction and checking."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .ast import (Assign, Binary, CallExpr, Expr, ExprStmt, For, FuncDecl,
                  If, IndexRef, InsecureBlock, IntLiteral, LocalDecl,
                  Marker, ProgramAst, Return, Stmt, Unary, VarDecl, VarRef,
                  While)


def mangle_param(function: str, param: str) -> str:
    """Static storage name for a parameter (``f$p``)."""
    return f"{function}${param}"


def mangle_ret(function: str) -> str:
    """Static storage name for a function's return value (``f$ret``)."""
    return f"{function}$ret"


class SemanticError(ValueError):
    """Raised for type/name errors in SecureC source."""


@dataclass
class Symbol:
    """One declared variable."""

    name: str
    is_array: bool
    size: int               # words (1 for scalars)
    secure: bool
    const: bool
    init: Optional[list[int]]
    line: int


@dataclass
class FuncInfo:
    """One declared function."""

    name: str
    params: list[str]       # original parameter names
    line: int
    #: Local (static) variable names declared in the body.
    locals: set[str] = None

    def __post_init__(self) -> None:
        if self.locals is None:
            self.locals = set()

    @property
    def arity(self) -> int:
        return len(self.params)

    def param_vars(self) -> list[str]:
        return [mangle_param(self.name, p) for p in self.params]

    @property
    def ret_var(self) -> str:
        return mangle_ret(self.name)


class SymbolTable:
    """Declared variables and functions, including the synthetic static
    storage slots for parameters, locals, and return values."""

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}
        self.functions: dict[str, FuncInfo] = {}

    def declare_function(self, decl: FuncDecl) -> FuncInfo:
        if decl.name in self.functions:
            raise SemanticError(
                f"line {decl.line}: duplicate function {decl.name!r}")
        if decl.name in self._symbols:
            raise SemanticError(
                f"line {decl.line}: {decl.name!r} already declared as a "
                "variable")
        if len(set(decl.params)) != len(decl.params):
            raise SemanticError(
                f"line {decl.line}: duplicate parameter in {decl.name!r}")
        info = FuncInfo(name=decl.name, params=list(decl.params),
                        line=decl.line)
        self.functions[decl.name] = info
        # Static storage for parameters and the return value.
        for var in info.param_vars() + [info.ret_var]:
            self._declare_synthetic(var, decl.line)
        self._declare_synthetic(f"{decl.name}$ra", decl.line)
        return info

    def _declare_synthetic(self, name: str, line: int,
                           size: int = 1, is_array: bool = False) -> None:
        self._symbols[name] = Symbol(name=name, is_array=is_array,
                                     size=size, secure=False, const=False,
                                     init=None, line=line)

    def lookup_function(self, name: str, line: int) -> FuncInfo:
        info = self.functions.get(name)
        if info is None:
            raise SemanticError(f"line {line}: undefined function {name!r}")
        return info

    def declare(self, decl: VarDecl) -> Symbol:
        if decl.name in self._symbols:
            raise SemanticError(
                f"line {decl.line}: duplicate declaration of {decl.name!r}")
        is_array = decl.size is not None or (
            decl.init is not None and len(decl.init) > 1)
        if is_array:
            size = decl.size if decl.size is not None else len(decl.init)
            if size <= 0:
                raise SemanticError(
                    f"line {decl.line}: array {decl.name!r} has size {size}")
        else:
            size = 1
        symbol = Symbol(name=decl.name, is_array=is_array, size=size,
                        secure=decl.secure, const=decl.const, init=decl.init,
                        line=decl.line)
        self._symbols[decl.name] = symbol
        return symbol

    def lookup(self, name: str, line: int) -> Symbol:
        symbol = self._symbols.get(name)
        if symbol is None:
            raise SemanticError(f"line {line}: undeclared variable {name!r}")
        return symbol

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def symbols(self) -> list[Symbol]:
        return list(self._symbols.values())

    def secure_seeds(self) -> list[str]:
        """Names of ``secure``-annotated variables (the slicing seeds)."""
        return [s.name for s in self._symbols.values() if s.secure]


class Analyzer:
    """Builds the symbol table and checks every statement/expression.

    Parameter references inside function bodies are rewritten in place to
    their mangled static-storage names (``f$p``), so later phases treat
    every variable uniformly.
    """

    def __init__(self, program: ProgramAst):
        self.program = program
        self.table = SymbolTable()
        self._current_function: Optional[FuncInfo] = None
        self._calls: dict[str, set[str]] = {}

    def analyze(self) -> SymbolTable:
        for decl in self.program.decls:
            self.table.declare(decl)
        for func in self.program.funcs:
            self.table.declare_function(func)
        self._calls = {func.name: set() for func in self.program.funcs}
        self._calls[""] = set()  # main
        for stmt in self.program.body:
            self._check_stmt(stmt)
        for func in self.program.funcs:
            self._check_function(func)
        self._reject_recursion()
        return self.table

    @staticmethod
    def _ends_with_return(body: list) -> bool:
        if not body:
            return False
        last = body[-1]
        if isinstance(last, Return):
            return True
        # A trailing __insecure block counts if it itself ends in return
        # (the declassified-return pattern).
        if isinstance(last, InsecureBlock):
            return Analyzer._ends_with_return(last.body)
        return False

    def _check_function(self, func: FuncDecl) -> None:
        info = self.table.functions[func.name]
        self._current_function = info
        try:
            if not self._ends_with_return(func.body):
                raise SemanticError(
                    f"line {func.line}: function {func.name!r} must end "
                    "with a return statement")
            for stmt in func.body:
                self._check_stmt(stmt)
        finally:
            self._current_function = None

    def _reject_recursion(self) -> None:
        """Static frames cannot support recursion; reject call cycles."""

        def reachable(start: str, target: str,
                      seen: set[str]) -> bool:
            for callee in self._calls.get(start, ()):
                if callee == target:
                    return True
                if callee not in seen:
                    seen.add(callee)
                    if reachable(callee, target, seen):
                        return True
            return False

        for name in self.table.functions:
            if reachable(name, name, set()):
                raise SemanticError(
                    f"function {name!r} is recursive; SecureC functions "
                    "use static frames and cannot recurse")

    def _resolve_name(self, node) -> None:
        """Rewrite a parameter/local reference to its mangled name."""
        info = self._current_function
        if info is not None and (node.name in info.params
                                 or node.name in info.locals):
            node.name = mangle_param(info.name, node.name)

    # -- statements --------------------------------------------------------

    def _check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, If):
            self._check_expr(stmt.cond)
            for child in stmt.then_body:
                self._check_stmt(child)
            for child in stmt.else_body:
                self._check_stmt(child)
        elif isinstance(stmt, While):
            self._check_expr(stmt.cond)
            for child in stmt.body:
                self._check_stmt(child)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self._check_assign(stmt.init)
            if stmt.cond is not None:
                self._check_expr(stmt.cond)
            if stmt.step is not None:
                self._check_assign(stmt.step)
            for child in stmt.body:
                self._check_stmt(child)
        elif isinstance(stmt, Marker):
            self._check_expr(stmt.value)
        elif isinstance(stmt, InsecureBlock):
            for child in stmt.body:
                self._check_stmt(child)
        elif isinstance(stmt, Return):
            if self._current_function is None:
                raise SemanticError(
                    f"line {stmt.line}: return outside a function")
            self._check_expr(stmt.value)
        elif isinstance(stmt, ExprStmt):
            if not isinstance(stmt.expr, CallExpr):
                raise SemanticError(
                    f"line {stmt.line}: expression statement must be a "
                    "function call")
            self._check_expr(stmt.expr)
        elif isinstance(stmt, LocalDecl):
            self._check_local_decl(stmt)
        else:  # pragma: no cover - parser only produces the above
            raise SemanticError(f"unknown statement {stmt!r}")

    def _check_local_decl(self, stmt: LocalDecl) -> None:
        info = self._current_function
        if info is None:
            # A declaration statement in the main body: plain global.
            self.table.declare(VarDecl(name=stmt.name, size=stmt.size,
                                       init=None, line=stmt.line))
        else:
            if stmt.name in info.params or stmt.name in info.locals:
                raise SemanticError(
                    f"line {stmt.line}: duplicate local {stmt.name!r} in "
                    f"function {info.name!r}")
            info.locals.add(stmt.name)
            mangled = mangle_param(info.name, stmt.name)
            if stmt.size is not None:
                if stmt.size <= 0:
                    raise SemanticError(
                        f"line {stmt.line}: array {stmt.name!r} has size "
                        f"{stmt.size}")
                self.table._declare_synthetic(mangled, stmt.line,
                                              size=stmt.size, is_array=True)
            else:
                self.table._declare_synthetic(mangled, stmt.line)
            stmt.name = mangled
        if stmt.init is not None:
            self._check_expr(stmt.init)

    def _check_assign(self, assign: Assign) -> None:
        target = assign.target
        if isinstance(target, VarRef):
            self._resolve_name(target)
            symbol = self.table.lookup(target.name, target.line)
            if symbol.is_array:
                raise SemanticError(
                    f"line {target.line}: cannot assign whole array "
                    f"{target.name!r}")
        elif isinstance(target, IndexRef):
            self._resolve_name(target)
            symbol = self.table.lookup(target.name, target.line)
            if not symbol.is_array:
                raise SemanticError(
                    f"line {target.line}: {target.name!r} is not an array")
            self._check_expr(target.index)
        else:  # pragma: no cover
            raise SemanticError(f"bad assignment target {target!r}")
        if symbol.const:
            raise SemanticError(
                f"line {assign.line}: cannot assign to const {symbol.name!r}")
        self._check_expr(assign.value)

    # -- expressions -------------------------------------------------------

    def _check_expr(self, expr: Expr) -> None:
        if isinstance(expr, IntLiteral):
            if not -0x8000_0000 <= expr.value <= 0xFFFF_FFFF:
                raise SemanticError(
                    f"line {expr.line}: literal {expr.value} out of 32-bit "
                    "range")
        elif isinstance(expr, VarRef):
            self._resolve_name(expr)
            symbol = self.table.lookup(expr.name, expr.line)
            if symbol.is_array:
                raise SemanticError(
                    f"line {expr.line}: array {expr.name!r} used without "
                    "index")
        elif isinstance(expr, IndexRef):
            self._resolve_name(expr)
            symbol = self.table.lookup(expr.name, expr.line)
            if not symbol.is_array:
                raise SemanticError(
                    f"line {expr.line}: {expr.name!r} is not an array")
            self._check_expr(expr.index)
        elif isinstance(expr, Unary):
            self._check_expr(expr.operand)
        elif isinstance(expr, Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
        elif isinstance(expr, CallExpr):
            info = self.table.lookup_function(expr.name, expr.line)
            if len(expr.args) != info.arity:
                raise SemanticError(
                    f"line {expr.line}: {expr.name!r} takes {info.arity} "
                    f"argument(s), got {len(expr.args)}")
            caller = self._current_function.name \
                if self._current_function else ""
            self._calls.setdefault(caller, set()).add(expr.name)
            for arg in expr.args:
                self._check_expr(arg)
        else:  # pragma: no cover
            raise SemanticError(f"unknown expression {expr!r}")


def analyze(program: ProgramAst) -> SymbolTable:
    """Run semantic analysis; returns the symbol table."""
    return Analyzer(program).analyze()
