"""Tokenizer for SecureC."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

KEYWORDS = frozenset({
    "int", "secure", "const", "if", "else", "while", "for", "return",
    "__marker", "__insecure",
})

#: Multi-character operators first so maximal munch works.
_OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "[", "]", "{", "}", ";", ",",
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


class LexError(SyntaxError):
    """Raised on an unrecognized character."""


@dataclass(frozen=True)
class Token:
    kind: str        # 'number' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens; a final synthetic 'eof' token is always produced."""
    position = 0
    line = 1
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise LexError(
                f"unexpected character {source[position]!r} on line {line}")
        text = match.group(0)
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            line += text.count("\n")
        elif kind == "name" and text in KEYWORDS:
            yield Token("keyword", text, line)
        else:
            yield Token(kind, text, line)
        position = match.end()
    yield Token("eof", "", line)
