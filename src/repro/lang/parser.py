"""Recursive-descent parser for SecureC.

Grammar (top level is declarations plus straight statements; execution halts
after the last statement):

    program   := item*
    item      := decl | stmt
    decl      := ("secure" | "const")* "int" NAME ("[" NUMBER "]")?
                 ("=" init)? ";"
    init      := expr | "{" expr ("," expr)* "}"
    stmt      := assign ";"
               | "if" "(" expr ")" block ("else" (block | if_stmt))?
               | "while" "(" expr ")" block
               | "for" "(" assign? ";" expr? ";" assign? ")" block
               | "__marker" "(" expr ")" ";"
    block     := "{" stmt* "}" | stmt
    assign    := lvalue "=" expr
    expr      := precedence-climbing over || && | ^ & ==/!= relational
                 shifts additive unary primary
"""

from __future__ import annotations

from typing import Optional

from .ast import (Assign, Binary, CallExpr, Expr, ExprStmt, For, FuncDecl,
                  If, IndexRef, InsecureBlock, IntLiteral, LocalDecl,
                  Marker, ProgramAst, Return, Stmt, Unary, VarDecl, VarRef,
                  While)
from .lexer import Token, tokenize


class ParseError(SyntaxError):
    """Raised with line information on malformed source."""


#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
}


class Parser:
    def __init__(self, source: str):
        self._tokens = list(tokenize(source))
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._cur
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            token = self._cur
            want = text or kind
            raise ParseError(
                f"line {token.line}: expected {want!r}, found {token.text!r}")
        return self._advance()

    # -- program ---------------------------------------------------------

    def parse(self) -> ProgramAst:
        program = ProgramAst(line=1)
        while not self._check("eof"):
            if self._check("keyword", "secure") \
                    or self._check("keyword", "const"):
                program.decls.append(self._decl())
            elif self._check("keyword", "int"):
                if self._is_function_def():
                    program.funcs.append(self._func())
                else:
                    program.decls.append(self._decl())
            else:
                program.body.append(self._stmt())
        return program

    def _is_function_def(self) -> bool:
        """Lookahead: ``int NAME (`` starts a function definition."""
        after_int = self._tokens[self._pos + 1]
        after_name = self._tokens[self._pos + 2]
        return after_int.kind == "name" and after_name.kind == "op" \
            and after_name.text == "("

    def _func(self) -> FuncDecl:
        line = self._cur.line
        self._expect("keyword", "int")
        name = self._expect("name").text
        self._expect("op", "(")
        params: list[str] = []
        if not self._check("op", ")"):
            while True:
                self._expect("keyword", "int")
                params.append(self._expect("name").text)
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        self._expect("op", "{")
        body: list[Stmt] = []
        while not self._accept("op", "}"):
            body.append(self._stmt())
        return FuncDecl(name=name, params=params, body=body, line=line)

    def _decl(self) -> VarDecl:
        line = self._cur.line
        secure = False
        const = False
        while True:
            if self._accept("keyword", "secure"):
                secure = True
            elif self._accept("keyword", "const"):
                const = True
            else:
                break
        self._expect("keyword", "int")
        name = self._expect("name").text
        size: Optional[int] = None
        if self._accept("op", "["):
            size = self._int_token()
            self._expect("op", "]")
        init: Optional[list[int]] = None
        if self._accept("op", "="):
            if self._accept("op", "{"):
                init = [self._const_expr()]
                while self._accept("op", ","):
                    init.append(self._const_expr())
                self._expect("op", "}")
            else:
                init = [self._const_expr()]
        self._expect("op", ";")
        if const and init is None:
            raise ParseError(f"line {line}: const {name!r} needs an initializer")
        if size is not None and init is not None and len(init) > size:
            raise ParseError(
                f"line {line}: initializer for {name!r} has {len(init)} "
                f"elements, array size is {size}")
        return VarDecl(name=name, size=size, init=init, secure=secure,
                       const=const, line=line)

    def _int_token(self) -> int:
        token = self._expect("number")
        return int(token.text, 0)

    def _const_expr(self) -> int:
        """Constant initializer element: integer with optional unary minus."""
        if self._accept("op", "-"):
            return -self._int_token() & 0xFFFF_FFFF
        return self._int_token()

    # -- statements --------------------------------------------------------

    def _stmt(self) -> Stmt:
        token = self._cur
        if self._accept("keyword", "if"):
            return self._if_stmt(token.line)
        if self._accept("keyword", "while"):
            self._expect("op", "(")
            cond = self._expr()
            self._expect("op", ")")
            return While(cond=cond, body=self._block(), line=token.line)
        if self._accept("keyword", "for"):
            return self._for_stmt(token.line)
        if self._accept("keyword", "__insecure"):
            self._expect("op", "{")
            body = []
            while not self._accept("op", "}"):
                body.append(self._stmt())
            return InsecureBlock(body=body, line=token.line)
        if self._accept("keyword", "__marker"):
            self._expect("op", "(")
            value = self._expr()
            self._expect("op", ")")
            self._expect("op", ";")
            return Marker(value=value, line=token.line)
        if self._accept("keyword", "return"):
            value = self._expr()
            self._expect("op", ";")
            return Return(value=value, line=token.line)
        if self._accept("keyword", "int"):
            name = self._expect("name").text
            size = None
            init = None
            if self._accept("op", "["):
                size = self._int_token()
                self._expect("op", "]")
            elif self._accept("op", "="):
                init = self._expr()
            self._expect("op", ";")
            return LocalDecl(name=name, size=size, init=init,
                             line=token.line)
        if token.kind == "name":
            following = self._tokens[self._pos + 1]
            if following.kind == "op" and following.text == "(":
                call = self._primary()
                self._expect("op", ";")
                return ExprStmt(expr=call, line=token.line)
        assign = self._assign()
        self._expect("op", ";")
        return assign

    def _if_stmt(self, line: int) -> If:
        self._expect("op", "(")
        cond = self._expr()
        self._expect("op", ")")
        then_body = self._block()
        else_body: list[Stmt] = []
        if self._accept("keyword", "else"):
            if self._check("keyword", "if"):
                nested_line = self._cur.line
                self._advance()
                else_body = [self._if_stmt(nested_line)]
            else:
                else_body = self._block()
        return If(cond=cond, then_body=then_body, else_body=else_body,
                  line=line)

    def _for_stmt(self, line: int) -> For:
        self._expect("op", "(")
        init = None if self._check("op", ";") else self._assign()
        self._expect("op", ";")
        cond = None if self._check("op", ";") else self._expr()
        self._expect("op", ";")
        step = None if self._check("op", ")") else self._assign()
        self._expect("op", ")")
        return For(init=init, cond=cond, step=step, body=self._block(),
                   line=line)

    def _block(self) -> list[Stmt]:
        if self._accept("op", "{"):
            body = []
            while not self._accept("op", "}"):
                body.append(self._stmt())
            return body
        return [self._stmt()]

    def _assign(self) -> Assign:
        line = self._cur.line
        target = self._lvalue()
        self._expect("op", "=")
        value = self._expr()
        return Assign(target=target, value=value, line=line)

    def _lvalue(self):
        token = self._expect("name")
        if self._accept("op", "["):
            index = self._expr()
            self._expect("op", "]")
            return IndexRef(name=token.text, index=index, line=token.line)
        return VarRef(name=token.text, line=token.line)

    # -- expressions -------------------------------------------------------

    def _expr(self, min_precedence: int = 1) -> Expr:
        left = self._unary()
        while True:
            token = self._cur
            if token.kind != "op":
                break
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            right = self._expr(precedence + 1)
            left = Binary(op=token.text, left=left, right=right,
                          line=token.line)
        return left

    def _unary(self) -> Expr:
        token = self._cur
        if token.kind == "op" and token.text in ("-", "~", "!"):
            self._advance()
            return Unary(op=token.text, operand=self._unary(),
                         line=token.line)
        return self._primary()

    def _primary(self) -> Expr:
        token = self._cur
        if token.kind == "number":
            self._advance()
            return IntLiteral(value=int(token.text, 0), line=token.line)
        if token.kind == "name":
            following = self._tokens[self._pos + 1]
            if following.kind == "op" and following.text == "(":
                self._advance()
                self._advance()
                args: list[Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._expr())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                return CallExpr(name=token.text, args=args, line=token.line)
            return self._lvalue()
        if self._accept("op", "("):
            expr = self._expr()
            self._expect("op", ")")
            return expr
        raise ParseError(
            f"line {token.line}: unexpected token {token.text!r}")


def parse(source: str) -> ProgramAst:
    """Parse SecureC source into an AST."""
    return Parser(source).parse()
