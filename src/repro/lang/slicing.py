"""Forward slicing: propagate the ``secure`` annotation to derived data.

The paper (Section 4.1): *"It is not sufficient to protect only the
sensitive variables annotated by the programmer ... we achieve this using a
technique called forward slicing.  In forward slicing, given a set of
variables and/or instructions (called seeds), the compiler determines all
the variables/instructions whose values depend on the seeds."*

Implementation: a monotone taint fixpoint over the IR.  Memory locations
(scalars and whole arrays) form the lattice state; temporaries are
single-assignment, so their taint is recomputed functionally on each pass.
The iteration count is bounded by the number of memory variables, and each
pass is linear in the IR, so the total cost is within the paper's
"bounded by the number of edges of the control-flow graph" budget.

Two properties of the analysis matter for the experiments:

* **Index taint**: loading a public table at a secret-derived index (the
  S-box lookup) taints the loaded value AND flags the load as
  ``secure_index`` so codegen uses the secure-indexed load (``silw``).
* **Secret-dependent control flow cannot be masked** by secure instructions
  (the branch outcome changes the instruction stream itself); the slicer
  reports it as a diagnostic, matching the paper's position that such code
  must be restructured (their Section 1 cites Coron's restructuring).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import CFG
from .ir import (Bin, BranchZero, Const, Instr, LoadArr, LoadVar, MarkerOp,
                 StoreArr, StoreVar, Temp)
from .semantics import SymbolTable


@dataclass
class Diagnostic:
    """A security finding the compiler cannot fix by instruction selection."""

    kind: str      # 'secret-branch' | 'secret-store-index'
    line: int
    message: str


@dataclass
class SliceResult:
    """Output of the forward-slicing pass."""

    #: Memory variables (scalars and arrays) whose values depend on seeds.
    tainted_vars: frozenset[str]
    #: IR instruction indices that must execute in secure mode.
    critical: frozenset[int]
    #: Indices of LoadArr instructions needing the secure-indexed load.
    secure_index_loads: frozenset[int]
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Number of fixpoint passes (for the complexity claim in tests).
    passes: int = 0
    cfg_edges: int = 0


class ForwardSlicer:
    """Computes the forward slice of the ``secure``-annotated seeds.

    ``propagate=False`` disables the slicing step and secures only the
    operations that touch an annotated variable *directly* — the ablation
    the paper argues against (indirect leakage through derived values).
    """

    def __init__(self, code: list[Instr], table: SymbolTable,
                 propagate: bool = True):
        self.code = code
        self.table = table
        self.propagate = propagate

    def run(self, extra_seeds: frozenset[str] = frozenset()) -> SliceResult:
        seeds = frozenset(self.table.secure_seeds()) | extra_seeds
        cfg = CFG(self.code)
        tainted_vars: set[str] = set(seeds)
        passes = 0
        if self.propagate:
            changed = True
            while changed:
                passes += 1
                changed = self._pass(tainted_vars)
        # Final classification pass with the stable var-taint set.
        temp_taint = self._temp_taint(tainted_vars)
        critical: set[int] = set()
        secure_index_loads: set[int] = set()
        diagnostics: list[Diagnostic] = []
        for position, instr in enumerate(self.code):
            if instr.declassified:
                continue
            if self._is_critical(instr, tainted_vars, temp_taint, seeds):
                critical.add(position)
            if isinstance(instr, LoadArr) and instr.index in temp_taint:
                secure_index_loads.add(position)
                instr.secure_index = True
            if isinstance(instr, StoreArr) and instr.index in temp_taint:
                diagnostics.append(Diagnostic(
                    kind="secret-store-index", line=instr.line,
                    message=f"line {instr.line}: store to {instr.array!r} at "
                            "a secret-derived index; the secure store does "
                            "not mask write addresses"))
            if isinstance(instr, BranchZero) and instr.cond in temp_taint:
                diagnostics.append(Diagnostic(
                    kind="secret-branch", line=instr.line,
                    message=f"line {instr.line}: branch condition depends on "
                            "secure data; control flow cannot be masked — "
                            "restructure the code"))
        return SliceResult(tainted_vars=frozenset(tainted_vars),
                           critical=frozenset(critical),
                           secure_index_loads=frozenset(secure_index_loads),
                           diagnostics=diagnostics, passes=passes,
                           cfg_edges=cfg.edge_count)

    # ------------------------------------------------------------------

    def _temp_taint(self, tainted_vars: set[str]) -> set[Temp]:
        """One linear pass computing temp taint from current var taint."""
        taint: set[Temp] = set()
        for instr in self.code:
            if isinstance(instr, Const):
                taint.discard(instr.dest)
            elif isinstance(instr, LoadVar):
                if instr.var in tainted_vars:
                    taint.add(instr.dest)
            elif isinstance(instr, LoadArr):
                if instr.array in tainted_vars or instr.index in taint:
                    taint.add(instr.dest)
            elif isinstance(instr, Bin):
                if instr.a in taint or instr.b in taint:
                    taint.add(instr.dest)
        return taint

    def _pass(self, tainted_vars: set[str]) -> bool:
        temp_taint = self._temp_taint(tainted_vars)
        changed = False
        for instr in self.code:
            if isinstance(instr, StoreVar):
                if instr.src in temp_taint and instr.var not in tainted_vars:
                    tainted_vars.add(instr.var)
                    changed = True
            elif isinstance(instr, StoreArr):
                if (instr.src in temp_taint or instr.index in temp_taint) \
                        and instr.array not in tainted_vars:
                    tainted_vars.add(instr.array)
                    changed = True
        return changed

    def _is_critical(self, instr: Instr, tainted_vars: set[str],
                     temp_taint: set[Temp], seeds: frozenset[str]) -> bool:
        if not self.propagate:
            # Annotate-only ablation: direct touches of seed variables.
            if isinstance(instr, LoadVar):
                return instr.var in seeds
            if isinstance(instr, StoreVar):
                return instr.var in seeds
            if isinstance(instr, LoadArr):
                return instr.array in seeds
            if isinstance(instr, StoreArr):
                return instr.array in seeds
            return False
        if isinstance(instr, LoadVar):
            return instr.var in tainted_vars
        if isinstance(instr, StoreVar):
            return instr.src in temp_taint
        if isinstance(instr, LoadArr):
            return instr.array in tainted_vars or instr.index in temp_taint
        if isinstance(instr, StoreArr):
            return instr.src in temp_taint or instr.index in temp_taint
        if isinstance(instr, Bin):
            return instr.a in temp_taint or instr.b in temp_taint
        if isinstance(instr, MarkerOp):
            return False
        return False
