"""AST -> three-address IR lowering."""

from __future__ import annotations

from .ast import (Assign, Binary, CallExpr, Expr, ExprStmt, For, If,
                  IndexRef, InsecureBlock, IntLiteral, LocalDecl, Marker,
                  ProgramAst, Return, Stmt, Unary, VarRef, While)
from .ir import (Bin, BinOp, BranchZero, Call, Const, FuncBegin, HaltOp,
                 Instr, Jump, Label, LoadArr, LoadVar, MarkerOp, ReturnOp,
                 StoreArr, StoreVar, Temp)
from .semantics import SymbolTable


class LoweringError(ValueError):
    """Raised when an AST construct cannot be lowered."""


#: Direct binary-op mappings.
_DIRECT = {
    "+": BinOp.ADD, "-": BinOp.SUB,
    "&": BinOp.AND, "|": BinOp.OR, "^": BinOp.XOR,
    "<<": BinOp.SLL, ">>": BinOp.SRL,
    "<": BinOp.SLT,
}


class Lowerer:
    def __init__(self, table: SymbolTable):
        self.table = table
        self.code: list[Instr] = []
        self._next_temp = 0
        self._next_label = 0
        self._insecure_depth = 0
        self._current_function: str = ""

    # -- helpers -----------------------------------------------------------

    def _temp(self) -> Temp:
        self._next_temp += 1
        return Temp(self._next_temp)

    def _label(self, hint: str) -> str:
        self._next_label += 1
        return f"$L{hint}{self._next_label}"

    def _emit(self, instr: Instr) -> None:
        if self._insecure_depth:
            instr.declassified = True
        self.code.append(instr)

    def _const(self, value: int, line: int) -> Temp:
        dest = self._temp()
        self._emit(Const(dest=dest, value=value & 0xFFFF_FFFF, line=line))
        return dest

    def _bin(self, op: BinOp, a: Temp, b: Temp, line: int) -> Temp:
        dest = self._temp()
        self._emit(Bin(dest=dest, op=op, a=a, b=b, line=line))
        return dest

    def _normalize_bool(self, value: Temp, line: int) -> Temp:
        """Map any nonzero value to 1 (for && / ||)."""
        zero = self._const(0, line)
        return self._bin(BinOp.SLTU, zero, value, line)  # 0 < v

    # -- program -----------------------------------------------------------

    def lower(self, program: ProgramAst) -> list[Instr]:
        for stmt in program.body:
            self._stmt(stmt)
        if program.funcs:
            # Halt separates the main body from the function bodies, which
            # are only reachable through calls.
            self._emit(HaltOp())
            for func in program.funcs:
                self._current_function = func.name
                self._emit(FuncBegin(name=func.name, line=func.line))
                for stmt in func.body:
                    self._stmt(stmt)
                self._current_function = ""
        return self.code

    # -- statements ----------------------------------------------------------

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self._assign(stmt)
        elif isinstance(stmt, If):
            self._if(stmt)
        elif isinstance(stmt, While):
            self._while(stmt)
        elif isinstance(stmt, For):
            self._for(stmt)
        elif isinstance(stmt, Marker):
            value = self._expr(stmt.value)
            self._emit(MarkerOp(src=value, line=stmt.line))
        elif isinstance(stmt, InsecureBlock):
            self._insecure_depth += 1
            try:
                for child in stmt.body:
                    self._stmt(child)
            finally:
                self._insecure_depth -= 1
        elif isinstance(stmt, Return):
            value = self._expr(stmt.value)
            info = self.table.functions[self._current_function]
            self._emit(StoreVar(var=info.ret_var, src=value,
                                line=stmt.line))
            self._emit(ReturnOp(name=self._current_function,
                                line=stmt.line))
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, LocalDecl):
            # Storage is static; only a scalar initializer generates code
            # (it runs as an assignment whenever control reaches it).
            if stmt.init is not None:
                value = self._expr(stmt.init)
                self._emit(StoreVar(var=stmt.name, src=value,
                                    line=stmt.line))
        else:  # pragma: no cover
            raise LoweringError(f"cannot lower {stmt!r}")

    def _assign(self, assign: Assign) -> None:
        value = self._expr(assign.value)
        target = assign.target
        if isinstance(target, VarRef):
            self._emit(StoreVar(var=target.name, src=value, line=assign.line))
        else:
            index = self._expr(target.index)
            self._emit(StoreArr(array=target.name, index=index, src=value,
                                line=assign.line))

    def _if(self, stmt: If) -> None:
        cond = self._expr(stmt.cond)
        else_label = self._label("else")
        end_label = self._label("fi")
        self._emit(BranchZero(cond=cond, target=else_label, line=stmt.line))
        for child in stmt.then_body:
            self._stmt(child)
        if stmt.else_body:
            self._emit(Jump(target=end_label, line=stmt.line))
            self._emit(Label(name=else_label, line=stmt.line))
            for child in stmt.else_body:
                self._stmt(child)
            self._emit(Label(name=end_label, line=stmt.line))
        else:
            self._emit(Label(name=else_label, line=stmt.line))

    def _while(self, stmt: While) -> None:
        head = self._label("loop")
        end = self._label("pool")
        self._emit(Label(name=head, line=stmt.line))
        cond = self._expr(stmt.cond)
        self._emit(BranchZero(cond=cond, target=end, line=stmt.line))
        for child in stmt.body:
            self._stmt(child)
        self._emit(Jump(target=head, line=stmt.line))
        self._emit(Label(name=end, line=stmt.line))

    def _for(self, stmt: For) -> None:
        if stmt.init is not None:
            self._assign(stmt.init)
        head = self._label("for")
        end = self._label("rof")
        self._emit(Label(name=head, line=stmt.line))
        if stmt.cond is not None:
            cond = self._expr(stmt.cond)
            self._emit(BranchZero(cond=cond, target=end, line=stmt.line))
        for child in stmt.body:
            self._stmt(child)
        if stmt.step is not None:
            self._assign(stmt.step)
        self._emit(Jump(target=head, line=stmt.line))
        self._emit(Label(name=end, line=stmt.line))

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: Expr) -> Temp:
        if isinstance(expr, IntLiteral):
            return self._const(expr.value, expr.line)
        if isinstance(expr, VarRef):
            dest = self._temp()
            self._emit(LoadVar(dest=dest, var=expr.name, line=expr.line))
            return dest
        if isinstance(expr, IndexRef):
            index = self._expr(expr.index)
            dest = self._temp()
            self._emit(LoadArr(dest=dest, array=expr.name, index=index,
                               line=expr.line))
            return dest
        if isinstance(expr, Unary):
            return self._unary(expr)
        if isinstance(expr, Binary):
            return self._binary(expr)
        if isinstance(expr, CallExpr):
            return self._call(expr)
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _call(self, expr: CallExpr) -> Temp:
        info = self.table.functions[expr.name]
        argument_temps = [self._expr(arg) for arg in expr.args]
        for var, temp in zip(info.param_vars(), argument_temps):
            self._emit(StoreVar(var=var, src=temp, line=expr.line))
        self._emit(Call(name=expr.name, line=expr.line))
        dest = self._temp()
        self._emit(LoadVar(dest=dest, var=info.ret_var, line=expr.line))
        return dest

    def _unary(self, expr: Unary) -> Temp:
        operand = self._expr(expr.operand)
        line = expr.line
        if expr.op == "-":
            zero = self._const(0, line)
            return self._bin(BinOp.SUB, zero, operand, line)
        if expr.op == "~":
            zero = self._const(0, line)
            return self._bin(BinOp.NOR, operand, zero, line)
        if expr.op == "!":
            one = self._const(1, line)
            return self._bin(BinOp.SLTU, operand, one, line)  # v < 1
        raise LoweringError(f"unknown unary operator {expr.op!r}")

    def _binary(self, expr: Binary) -> Temp:
        line = expr.line
        op = expr.op
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        direct = _DIRECT.get(op)
        if direct is not None:
            return self._bin(direct, left, right, line)
        if op == ">":
            return self._bin(BinOp.SLT, right, left, line)
        if op == "<=":  # !(right < left)
            less = self._bin(BinOp.SLT, right, left, line)
            one = self._const(1, line)
            return self._bin(BinOp.XOR, less, one, line)
        if op == ">=":  # !(left < right)
            less = self._bin(BinOp.SLT, left, right, line)
            one = self._const(1, line)
            return self._bin(BinOp.XOR, less, one, line)
        if op == "==":  # (left ^ right) < 1  (unsigned)
            diff = self._bin(BinOp.XOR, left, right, line)
            one = self._const(1, line)
            return self._bin(BinOp.SLTU, diff, one, line)
        if op == "!=":  # 0 < (left ^ right)
            diff = self._bin(BinOp.XOR, left, right, line)
            zero = self._const(0, line)
            return self._bin(BinOp.SLTU, zero, diff, line)
        if op == "&&":
            left_b = self._normalize_bool(left, line)
            right_b = self._normalize_bool(right, line)
            return self._bin(BinOp.AND, left_b, right_b, line)
        if op == "||":
            joined = self._bin(BinOp.OR, left, right, line)
            return self._normalize_bool(joined, line)
        raise LoweringError(f"unknown binary operator {op!r}")


def lower(program: ProgramAst, table: SymbolTable) -> list[Instr]:
    """Lower an analyzed AST to IR."""
    return Lowerer(table).lower(program)
