"""Three-address intermediate representation.

The IR is a flat list of instructions over virtual temporaries.  Scalars
live in memory (matching the paper's Figure 4 code, which reloads ``i``
from memory every iteration); temporaries only carry values within a
statement, which keeps register allocation trivial and makes the def-use
relation the forward-slicing pass consumes easy to compute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    id: int

    def __repr__(self) -> str:
        return f"t{self.id}"


class BinOp(enum.Enum):
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"



@dataclass
class IRInstr:
    """Base class; ``line`` tracks the source line for diagnostics."""

    line: int = field(default=0, kw_only=True)
    #: True for instructions inside an ``__insecure`` block: taint still
    #: flows through them, but they never become secure instructions.
    declassified: bool = field(default=False, kw_only=True)


@dataclass
class Const(IRInstr):
    dest: Temp = None
    value: int = 0


@dataclass
class Bin(IRInstr):
    dest: Temp = None
    op: BinOp = BinOp.ADD
    a: Temp = None
    b: Temp = None


@dataclass
class LoadVar(IRInstr):
    dest: Temp = None
    var: str = ""


@dataclass
class StoreVar(IRInstr):
    var: str = ""
    src: Temp = None


@dataclass
class LoadArr(IRInstr):
    dest: Temp = None
    array: str = ""
    index: Temp = None
    #: Set by the slicer: the index is derived from secure data, so the
    #: lookup must use the secure-indexed load (aligned table).
    secure_index: bool = field(default=False, kw_only=True)


@dataclass
class StoreArr(IRInstr):
    array: str = ""
    index: Temp = None
    src: Temp = None


@dataclass
class Label(IRInstr):
    name: str = ""


@dataclass
class Jump(IRInstr):
    target: str = ""


@dataclass
class BranchZero(IRInstr):
    """Branch to ``target`` when ``cond`` == 0."""

    cond: Temp = None
    target: str = ""


@dataclass
class MarkerOp(IRInstr):
    src: Temp = None


@dataclass
class Call(IRInstr):
    """Call a SecureC function.  Arguments and the return value travel
    through the function's static argument/return variables (``f$p0``,
    ``f$ret``), so the taint analysis needs no special call handling."""

    name: str = ""


@dataclass
class FuncBegin(IRInstr):
    """Function entry point (label + return-address save)."""

    name: str = ""


@dataclass
class ReturnOp(IRInstr):
    """Function return (the value was stored to ``name$ret`` already)."""

    name: str = ""


@dataclass
class HaltOp(IRInstr):
    """End of the main body (separates it from function bodies)."""


Instr = Union[Const, Bin, LoadVar, StoreVar, LoadArr, StoreArr, Label, Jump,
              BranchZero, MarkerOp, Call, FuncBegin, ReturnOp, HaltOp]


def defs_of(instr: Instr) -> Optional[Temp]:
    """The temp defined by an instruction, if any."""
    if isinstance(instr, (Const, Bin, LoadVar, LoadArr)):
        return instr.dest
    return None


def uses_of(instr: Instr) -> tuple[Temp, ...]:
    """The temps used by an instruction."""
    if isinstance(instr, Bin):
        return (instr.a, instr.b)
    if isinstance(instr, StoreVar):
        return (instr.src,)
    if isinstance(instr, LoadArr):
        return (instr.index,)
    if isinstance(instr, StoreArr):
        return (instr.index, instr.src)
    if isinstance(instr, BranchZero):
        return (instr.cond,)
    if isinstance(instr, MarkerOp):
        return (instr.src,)
    return ()


def format_ir(instructions: list[Instr]) -> str:
    """Readable IR dump for debugging and golden tests."""
    lines = []
    for instr in instructions:
        if isinstance(instr, Label):
            lines.append(f"{instr.name}:")
        elif isinstance(instr, Const):
            lines.append(f"  {instr.dest} = {instr.value}")
        elif isinstance(instr, Bin):
            lines.append(f"  {instr.dest} = {instr.op.value} {instr.a}, {instr.b}")
        elif isinstance(instr, LoadVar):
            lines.append(f"  {instr.dest} = load {instr.var}")
        elif isinstance(instr, StoreVar):
            lines.append(f"  store {instr.var} = {instr.src}")
        elif isinstance(instr, LoadArr):
            suffix = " [secure-index]" if instr.secure_index else ""
            lines.append(
                f"  {instr.dest} = load {instr.array}[{instr.index}]{suffix}")
        elif isinstance(instr, StoreArr):
            lines.append(f"  store {instr.array}[{instr.index}] = {instr.src}")
        elif isinstance(instr, Jump):
            lines.append(f"  jump {instr.target}")
        elif isinstance(instr, BranchZero):
            lines.append(f"  bz {instr.cond}, {instr.target}")
        elif isinstance(instr, MarkerOp):
            lines.append(f"  marker {instr.src}")
        elif isinstance(instr, Call):
            lines.append(f"  call {instr.name}")
        elif isinstance(instr, FuncBegin):
            lines.append(f"func {instr.name}:")
        elif isinstance(instr, ReturnOp):
            lines.append(f"  return [{instr.name}]")
        elif isinstance(instr, HaltOp):
            lines.append("  halt")
    return "\n".join(lines)
