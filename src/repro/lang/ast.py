"""Abstract syntax tree for SecureC, the annotated mini-C of this repo.

SecureC is the source language the paper's programmer writes: C-like
statements over 32-bit ints and int arrays, with a ``secure`` storage
qualifier that marks the sensitive seed variables (the key).  The compiler
propagates the annotation by forward slicing and selects secure instructions
for every operation on seed-derived data.

The language deliberately matches the paper's code style (Figure 4): global
bit arrays, index loops, no functions, every scalar lives in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass
class Node:
    """Base AST node with a source line for diagnostics."""

    line: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class IntLiteral(Node):
    value: int = 0


@dataclass
class VarRef(Node):
    name: str = ""


@dataclass
class IndexRef(Node):
    """``name[index]`` — array element access."""

    name: str = ""
    index: "Expr" = None


@dataclass
class Unary(Node):
    op: str = ""      # '-', '~', '!'
    operand: "Expr" = None


@dataclass
class Binary(Node):
    op: str = ""      # + - & | ^ << >> < > <= >= == != && ||
    left: "Expr" = None
    right: "Expr" = None


@dataclass
class CallExpr(Node):
    """``name(arg, ...)`` — call to a SecureC function."""

    name: str = ""
    args: list["Expr"] = field(default_factory=list)


Expr = Union[IntLiteral, VarRef, IndexRef, Unary, Binary, CallExpr]


# ---------------------------------------------------------------------------
# Statements and declarations
# ---------------------------------------------------------------------------


@dataclass
class VarDecl(Node):
    """``[secure] [const] int name[size] = init;``"""

    name: str = ""
    size: Optional[int] = None          # None -> scalar
    init: Optional[list[int]] = None    # constant initializer(s)
    secure: bool = False                # seed annotation
    const: bool = False                 # read-only table -> .data


@dataclass
class Assign(Node):
    target: Union[VarRef, IndexRef] = None
    value: Expr = None


@dataclass
class If(Node):
    cond: Expr = None
    then_body: list["Stmt"] = field(default_factory=list)
    else_body: list["Stmt"] = field(default_factory=list)


@dataclass
class While(Node):
    cond: Expr = None
    body: list["Stmt"] = field(default_factory=list)


@dataclass
class For(Node):
    init: Optional[Assign] = None
    cond: Optional[Expr] = None
    step: Optional[Assign] = None
    body: list["Stmt"] = field(default_factory=list)


@dataclass
class Marker(Node):
    """``__marker(value);`` — phase marker store, see MARKER_ADDR."""

    value: Expr = None


@dataclass
class InsecureBlock(Node):
    """``__insecure { ... }`` — declassified region.

    Operations inside execute with normal (insecure) instructions even when
    they touch sliced data.  This models the paper's manual decision for the
    output inverse permutation: "this operation does not need any secure
    instruction although it uses data generated from secure instructions as
    it reveals only the information already available from the output
    cipher".
    """

    body: list["Stmt"] = field(default_factory=list)


@dataclass
class Return(Node):
    """``return expr;`` — only valid inside a function body."""

    value: Expr = None


@dataclass
class ExprStmt(Node):
    """``name(args);`` — a call evaluated for its side effects."""

    expr: "Expr" = None


@dataclass
class LocalDecl(Node):
    """``int name;`` / ``int name = expr;`` / ``int name[N];`` inside a
    function body.

    Storage is static and function-scoped (no block scoping) — like C
    ``static`` locals, matching the language's static-frame model.  A
    scalar initializer executes as an assignment each time control
    reaches the declaration.
    """

    name: str = ""
    size: Optional[int] = None        # None -> scalar
    init: Optional["Expr"] = None     # scalars only


Stmt = Union[Assign, If, While, For, Marker, InsecureBlock, Return,
             ExprStmt, LocalDecl]


@dataclass
class FuncDecl(Node):
    """``int name(int p0, int p1) { ... return expr; }``

    Parameters are int scalars; function bodies see the globals plus their
    parameters.  Functions use static frames (argument/return slots in
    .data), which matches small embedded firmware and keeps taint analysis
    purely variable-based — recursion is rejected at semantic analysis.
    """

    name: str = ""
    params: list[str] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ProgramAst(Node):
    decls: list[VarDecl] = field(default_factory=list)
    funcs: list[FuncDecl] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
