"""IR -> assembly code generation with secure instruction selection.

The generator emits textual assembly (re-parsed by :mod:`repro.isa`), in the
exact code style of the paper's Figure 4: scalars are reloaded from memory,
array accesses are la/sll/addu/lw sequences, and the critical operations the
slicer identified use the secure mnemonics (``slw``, ``ssw``, ``sxor``,
``ssllv``, ``silw``...).

Secure-instruction selection rules (Section 4.2 of the paper):

* loads/stores of sliced data -> ``slw``/``ssw`` (secure assignment);
* XOR on sliced data -> ``sxor``;
* shifts on sliced data -> ``ssllv``/``ssrlv``/``ssrav``;
* table lookups at a secret-derived index -> aligned table + ``silw``,
  with the index-scaling arithmetic also in secure mode;
* other ALU ops on sliced data -> generic ``s.<op>`` (the architecture's
  secure bit applies to any opcode; the paper's four canonical classes
  cover DES, and this generalization covers other programs).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import (Bin, BinOp, BranchZero, Call, Const, FuncBegin, HaltOp,
                 Instr, Jump, Label, LoadArr, LoadVar, MarkerOp, ReturnOp,
                 StoreArr, StoreVar, Temp)
from .semantics import SymbolTable
from .slicing import SliceResult

#: Byte address of the phase-marker MMIO word (see repro.machine.pipeline).
MARKER_ADDRESS = 0x0000_FF00

#: Registers available to the allocator; $at, $v0, $v1 stay scratch.
_POOL = ("$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
         "$t8", "$t9", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5",
         "$s6", "$s7", "$a0", "$a1", "$a2", "$a3")

_R3_MNEMONIC = {
    BinOp.ADD: "addu", BinOp.SUB: "subu", BinOp.AND: "and",
    BinOp.OR: "or", BinOp.XOR: "xor", BinOp.NOR: "nor",
    BinOp.SLT: "slt", BinOp.SLTU: "sltu",
    BinOp.SLL: "sllv", BinOp.SRL: "srlv", BinOp.SRA: "srav",
}

_SECURE_MNEMONIC = {
    BinOp.XOR: "sxor",
    BinOp.SLL: "ssllv", BinOp.SRL: "ssrlv", BinOp.SRA: "ssrav",
}


class CodegenError(ValueError):
    """Raised when code generation fails (e.g. register pressure)."""


@dataclass
class CodegenOptions:
    #: Secure non-canonical ALU ops on sliced data via the generic s.-prefix.
    secure_tainted_alu: bool = True
    #: Emit a trailing halt (disable when splicing fragments).
    emit_halt: bool = True
    #: Fold small constants into immediate instruction forms (addiu, andi,
    #: ori, xori, slti, immediate shifts, load/store offsets) instead of
    #: materializing them with ``li``.  Part of the -O1 pipeline.
    use_immediates: bool = False
    #: Emit ``.loc line sliced`` debug directives so every generated
    #: instruction carries its high-level source line and slice membership
    #: (consumed by energy attribution; see repro.obs.attribution).
    emit_debug: bool = True


class _Allocator:
    """Linear-scan allocator over single-assignment temps."""

    def __init__(self, code: list[Instr]):
        self._free = list(reversed(_POOL))
        self._assigned: dict[Temp, str] = {}
        self._last_use: dict[Temp, int] = {}
        for position, instr in enumerate(code):
            for temp in _uses(instr):
                self._last_use[temp] = position

    def define(self, temp: Temp) -> str:
        if temp in self._assigned:
            raise CodegenError(f"temp {temp} defined twice")
        if not self._free:
            raise CodegenError("out of registers (expression too deep)")
        register = self._free.pop()
        self._assigned[temp] = register
        if temp not in self._last_use:
            # Dead value: release immediately after its defining instruction.
            self._last_use[temp] = -1
        return register

    def use(self, temp: Temp) -> str:
        try:
            return self._assigned[temp]
        except KeyError:
            raise CodegenError(f"temp {temp} used before definition") from None

    def release_dead(self, position: int) -> None:
        dead = [temp for temp, last in self._last_use.items()
                if last <= position and temp in self._assigned]
        for temp in dead:
            self._free.append(self._assigned.pop(temp))
            del self._last_use[temp]

    def live(self) -> list[tuple[Temp, str]]:
        """Currently-assigned (temp, register) pairs, deterministic order."""
        return sorted(self._assigned.items(), key=lambda kv: kv[1])


def _uses(instr: Instr) -> tuple[Temp, ...]:
    if isinstance(instr, Bin):
        return (instr.a, instr.b)
    if isinstance(instr, StoreVar):
        return (instr.src,)
    if isinstance(instr, LoadArr):
        return (instr.index,)
    if isinstance(instr, StoreArr):
        return (instr.index, instr.src)
    if isinstance(instr, BranchZero):
        return (instr.cond,)
    if isinstance(instr, MarkerOp):
        return (instr.src,)
    return ()


#: Immediate instruction per foldable BinOp (b-operand constant).
_IMM_MNEMONIC = {
    BinOp.ADD: "addiu", BinOp.AND: "andi", BinOp.OR: "ori",
    BinOp.XOR: "xori", BinOp.SLT: "slti", BinOp.SLTU: "sltiu",
    BinOp.SLL: "sll", BinOp.SRL: "srl", BinOp.SRA: "sra",
}

_SECURE_IMM_MNEMONIC = {
    BinOp.XOR: "sxori", BinOp.SLL: "ssll", BinOp.SRL: "ssrl",
    BinOp.SRA: "ssra",
}

_COMMUTATIVE = frozenset({BinOp.ADD, BinOp.AND, BinOp.OR, BinOp.XOR})


def _fits_signed16(value: int) -> bool:
    return value < 0x8000 or value >= 0xFFFF_8000


def _signed16(value: int) -> int:
    return value - 0x1_0000_0000 if value >= 0xFFFF_8000 else value


def _immediate_ok(op: BinOp, value: int) -> bool:
    if op in (BinOp.SLL, BinOp.SRL, BinOp.SRA):
        return 0 <= value <= 31
    if op in (BinOp.AND, BinOp.OR, BinOp.XOR):
        return 0 <= value <= 0xFFFF
    if op in (BinOp.ADD, BinOp.SLT, BinOp.SLTU):
        return _fits_signed16(value)
    if op is BinOp.SUB:
        # a - c  ->  addiu a, -c
        return _fits_signed16((-value) & 0xFFFF_FFFF)
    return False


class CodeGenerator:
    def __init__(self, code: list[Instr], table: SymbolTable,
                 slice_result: SliceResult,
                 options: CodegenOptions | None = None):
        self.code = code
        self.table = table
        self.slice = slice_result
        self.options = options or CodegenOptions()
        self._lines: list[str] = []
        #: Temps holding constants that are folded into immediates at every
        #: use and therefore never materialized into a register.
        self._inlined: dict[Temp, int] = {}
        if self.options.use_immediates:
            self._inlined = self._compute_inlined()

    # -- immediate folding --------------------------------------------------

    def _compute_inlined(self) -> dict[Temp, int]:
        const_value = {instr.dest: instr.value for instr in self.code
                       if isinstance(instr, Const)}
        blocked: set[Temp] = set()
        for instr in self.code:
            if isinstance(instr, Bin):
                b_const = instr.b in const_value
                a_const = instr.a in const_value
                if b_const and not _immediate_ok(instr.op,
                                                 const_value[instr.b]):
                    blocked.add(instr.b)
                if a_const:
                    # Only commutative ops can take the constant on the
                    # left, and only if the right side needs the register.
                    if instr.op in _COMMUTATIVE and not b_const \
                            and _immediate_ok(instr.op,
                                              const_value[instr.a]):
                        pass
                    else:
                        blocked.add(instr.a)
            elif isinstance(instr, (LoadArr, StoreArr)):
                index = instr.index
                if index in const_value:
                    offset = const_value[index] * 4
                    secure_index = isinstance(instr, LoadArr) \
                        and instr.secure_index
                    if secure_index or not 0 <= offset <= 0x7FFF:
                        blocked.add(index)
                if isinstance(instr, StoreArr) and instr.src in const_value:
                    blocked.add(instr.src)
            elif isinstance(instr, StoreVar):
                blocked.add(instr.src)
            elif isinstance(instr, BranchZero):
                blocked.add(instr.cond)
            elif isinstance(instr, MarkerOp):
                blocked.add(instr.src)
        return {temp: value for temp, value in const_value.items()
                if temp not in blocked}

    # ------------------------------------------------------------------

    def generate(self) -> str:
        """Emit the complete assembly module (data + text)."""
        # Text first: it discovers how many caller-save spill slots the
        # data segment must provide.
        self._lines = []
        self._spill_slots = 0
        self._emit_text()
        text_lines = self._lines
        self._lines = []
        self._emit_data()
        data_lines = self._lines
        self._lines = data_lines + text_lines
        return "\n".join(self._lines) + "\n"

    # -- data segment -----------------------------------------------------

    def _aligned_arrays(self) -> set[str]:
        """Arrays accessed via the secure-indexed load need power-of-two
        alignment so the index forms the low address bits (paper 4.2)."""
        names = set()
        for position in self.slice.secure_index_loads:
            instr = self.code[position]
            if isinstance(instr, LoadArr):
                names.add(instr.array)
        return names

    def _emit_data(self) -> None:
        aligned = self._aligned_arrays()
        self._lines.append(".data")
        for symbol in self.table.symbols():
            if symbol.name in aligned:
                span = symbol.size * 4
                exponent = max(2, (span - 1).bit_length())
                self._lines.append(f".align {exponent}")
            if symbol.init is not None:
                words = list(symbol.init)
                words += [0] * (symbol.size - len(words))
                text = ", ".join(str(w & 0xFFFF_FFFF) for w in words)
                self._lines.append(f"{symbol.name}: .word {text}")
            else:
                self._lines.append(f"{symbol.name}: .space {symbol.size * 4}")
        for slot in range(self._spill_slots):
            self._lines.append(f"__spill{slot}: .space 4")

    # -- text segment -------------------------------------------------------

    def _emit_text(self) -> None:
        emit = self._lines.append
        emit(".text")
        allocator = _Allocator(self.code)
        critical = self.slice.critical
        saw_halt_op = False
        emit_debug = self.options.emit_debug
        last_loc: tuple[int, bool] | None = None
        for position, instr in enumerate(self.code):
            secure = position in critical
            if emit_debug and not isinstance(instr, Label) \
                    and not (isinstance(instr, Const)
                             and instr.dest in self._inlined):
                line = getattr(instr, "line", 0) or 0
                if line and (line, secure) != last_loc:
                    emit(f"    .loc {line} {1 if secure else 0}")
                    last_loc = (line, secure)
            if isinstance(instr, Label):
                emit(f"{instr.name}:")
            elif isinstance(instr, Const):
                if instr.dest in self._inlined:
                    pass  # folded into immediate forms at every use
                else:
                    rd = allocator.define(instr.dest)
                    emit(f"    li {rd}, {instr.value}")
            elif isinstance(instr, Bin):
                self._emit_bin(instr, allocator, secure)
            elif isinstance(instr, LoadVar):
                rd_name = "slw" if secure else "lw"
                ra = allocator.define(instr.dest)
                emit(f"    {rd_name} {ra}, {instr.var}")
            elif isinstance(instr, StoreVar):
                rs = allocator.use(instr.src)
                mnemonic = "ssw" if secure else "sw"
                emit(f"    {mnemonic} {rs}, {instr.var}")
            elif isinstance(instr, LoadArr):
                self._emit_load_arr(instr, allocator, secure)
            elif isinstance(instr, StoreArr):
                self._emit_store_arr(instr, allocator, secure)
            elif isinstance(instr, Jump):
                emit(f"    j {instr.target}")
            elif isinstance(instr, BranchZero):
                cond = allocator.use(instr.cond)
                emit(f"    beq {cond}, $zero, {instr.target}")
            elif isinstance(instr, MarkerOp):
                src = allocator.use(instr.src)
                emit(f"    li $v0, {MARKER_ADDRESS}")
                emit(f"    sw {src}, 0($v0)")
            elif isinstance(instr, Call):
                self._emit_call(instr, allocator)
            elif isinstance(instr, HaltOp):
                emit("    halt")
                saw_halt_op = True
            elif isinstance(instr, FuncBegin):
                emit(f"{instr.name}:")
                emit(f"    sw $ra, {instr.name}$ra")
            elif isinstance(instr, ReturnOp):
                emit(f"    lw $ra, {instr.name}$ra")
                emit("    jr $ra")
            allocator.release_dead(position)
        if self.options.emit_halt and not saw_halt_op:
            if emit_debug and last_loc is not None:
                emit("    .loc 0 0")  # the epilogue halt has no source line
            emit("    halt")

    def _emit_call(self, instr: Call, allocator: _Allocator) -> None:
        """Caller-save call: spill live registers around the jal.

        Spill slots are static (functions cannot recurse), mirroring the
        static argument/return storage.
        """
        emit = self._lines.append
        live = allocator.live()
        self._spill_slots = max(self._spill_slots, len(live))
        for slot, (_, register) in enumerate(live):
            emit(f"    sw {register}, __spill{slot}")
        emit(f"    jal {instr.name}")
        for slot, (_, register) in enumerate(live):
            emit(f"    lw {register}, __spill{slot}")

    def _emit_bin(self, instr: Bin, allocator: _Allocator,
                  secure: bool) -> None:
        inlined = self._inlined
        if instr.b in inlined or instr.a in inlined:
            self._emit_bin_immediate(instr, allocator, secure)
            return
        ra = allocator.use(instr.a)
        rb = allocator.use(instr.b)
        rd = allocator.define(instr.dest)
        base = _R3_MNEMONIC[instr.op]
        if secure:
            mnemonic = _SECURE_MNEMONIC.get(instr.op)
            if mnemonic is None:
                mnemonic = f"s.{base}" if self.options.secure_tainted_alu \
                    else base
        else:
            mnemonic = base
        # For variable shifts the assembler syntax is op rd, rt(value),
        # rs(amount), which matches (a, b) ordering here.
        self._lines.append(f"    {mnemonic} {rd}, {ra}, {rb}")

    def _emit_bin_immediate(self, instr: Bin, allocator: _Allocator,
                            secure: bool) -> None:
        """Emit the immediate form of a Bin with one constant operand."""
        if instr.b in self._inlined:
            register_operand, value = instr.a, self._inlined[instr.b]
            op = instr.op
        else:
            # Constant on the left: only reachable for commutative ops.
            register_operand, value = instr.b, self._inlined[instr.a]
            op = instr.op
        if op is BinOp.SUB:
            op = BinOp.ADD
            value = (-value) & 0xFFFF_FFFF
        ra = allocator.use(register_operand)
        rd = allocator.define(instr.dest)
        base = _IMM_MNEMONIC[op]
        if secure:
            mnemonic = _SECURE_IMM_MNEMONIC.get(op)
            if mnemonic is None:
                mnemonic = f"s.{base}" if self.options.secure_tainted_alu \
                    else base
        else:
            mnemonic = base
        if op in (BinOp.ADD, BinOp.SLT, BinOp.SLTU):
            value = _signed16(value)
        self._lines.append(f"    {mnemonic} {rd}, {ra}, {value}")

    def _emit_load_arr(self, instr: LoadArr, allocator: _Allocator,
                       secure: bool) -> None:
        emit = self._lines.append
        if instr.index in self._inlined:
            # Constant index: fold into the load offset.
            offset = self._inlined[instr.index] * 4
            rd = allocator.define(instr.dest)
            mnemonic = "slw" if secure else "lw"
            emit(f"    {mnemonic} {rd}, {instr.array}+{offset}")
            return
        index = allocator.use(instr.index)
        rd = allocator.define(instr.dest)
        secure_index = instr.secure_index
        emit(f"    la $v0, {instr.array}")
        if secure_index:
            # Index scaling and address formation are masked too: the
            # aligned table base makes the add carry-free and the inverted
            # index is propagated alongside (paper Section 4.2).
            emit(f"    ssll $v1, {index}, 2")
            emit(f"    s.addu $v0, $v0, $v1")
            emit(f"    silw {rd}, 0($v0)")
        else:
            emit(f"    sll $v1, {index}, 2")
            emit(f"    addu $v0, $v0, $v1")
            mnemonic = "slw" if secure else "lw"
            emit(f"    {mnemonic} {rd}, 0($v0)")

    def _emit_store_arr(self, instr: StoreArr, allocator: _Allocator,
                        secure: bool) -> None:
        emit = self._lines.append
        if instr.index in self._inlined:
            offset = self._inlined[instr.index] * 4
            src = allocator.use(instr.src)
            mnemonic = "ssw" if secure else "sw"
            emit(f"    {mnemonic} {src}, {instr.array}+{offset}")
            return
        index = allocator.use(instr.index)
        src = allocator.use(instr.src)
        emit(f"    la $v0, {instr.array}")
        emit(f"    sll $v1, {index}, 2")
        emit(f"    addu $v0, $v0, $v1")
        mnemonic = "ssw" if secure else "sw"
        emit(f"    {mnemonic} {src}, 0($v0)")


def generate(code: list[Instr], table: SymbolTable,
             slice_result: SliceResult,
             options: CodegenOptions | None = None) -> str:
    """Generate assembly for analyzed + sliced IR."""
    return CodeGenerator(code, table, slice_result, options).generate()
