"""SecureC compiler: annotated mini-C -> secure-instruction assembly."""

from .ast import ProgramAst
from .cfg import CFG, BasicBlock
from .codegen import CodegenError, CodegenOptions, generate
from .compiler import CompileResult, compile_source
from .ir import BinOp, Temp, format_ir
from .lexer import LexError, Token, tokenize
from .lowering import LoweringError, lower
from .parser import ParseError, parse
from .semantics import Analyzer, SemanticError, Symbol, SymbolTable, analyze
from .slicing import Diagnostic, ForwardSlicer, SliceResult

__all__ = [
    "Analyzer", "BasicBlock", "BinOp", "CFG", "CodegenError",
    "CodegenOptions", "CompileResult", "Diagnostic", "ForwardSlicer",
    "LexError", "LoweringError", "ParseError", "ProgramAst", "SemanticError",
    "SliceResult", "Symbol", "SymbolTable", "Temp", "Token", "analyze",
    "compile_source", "format_ir", "generate", "lower", "parse", "tokenize",
]
