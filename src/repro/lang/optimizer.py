"""IR optimization passes (the ``-O1`` pipeline).

The paper calls its compiler an *optimizing* compiler; these passes make
that real while preserving the security analysis:

* **constant folding** — Bin ops over constant temps evaluate at compile
  time (32-bit wrap-around semantics identical to the ALU's);
* **algebraic simplification / copy propagation** — identities such as
  ``x + 0``, ``x ^ 0``, ``x << 0`` alias their destination to the source
  operand, and later uses are rewritten;
* **dead code elimination** — Const/Bin/LoadVar/LoadArr whose results are
  never used are removed (loads have no side effects on this machine).

All passes run *before* forward slicing, so the slicer sees (and codegen
secures) exactly the instructions that will execute.  Only untainted
values can ever fold (constants are public by definition), so optimization
can only ever remove insecure work — the masking property is preserved,
which `tests/lang/test_optimizer.py` verifies on the simulator.
"""

from __future__ import annotations

from typing import Optional

from .ir import (Bin, BinOp, BranchZero, Const, Instr, LoadArr, LoadVar,
                 MarkerOp, StoreArr, StoreVar, Temp, uses_of)

_WORD = 0xFFFF_FFFF


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _eval(op: BinOp, a: int, b: int) -> int:
    if op is BinOp.ADD:
        return (a + b) & _WORD
    if op is BinOp.SUB:
        return (a - b) & _WORD
    if op is BinOp.AND:
        return a & b
    if op is BinOp.OR:
        return a | b
    if op is BinOp.XOR:
        return a ^ b
    if op is BinOp.NOR:
        return (~(a | b)) & _WORD
    if op is BinOp.SLL:
        return (a << (b & 31)) & _WORD
    if op is BinOp.SRL:
        return a >> (b & 31)
    if op is BinOp.SRA:
        return (_signed(a) >> (b & 31)) & _WORD
    if op is BinOp.SLT:
        return 1 if _signed(a) < _signed(b) else 0
    if op is BinOp.SLTU:
        return 1 if a < b else 0
    raise AssertionError(op)  # pragma: no cover


#: (op, const_operand_is_b, const_value) patterns where the result equals
#: the other operand.
def _is_identity(op: BinOp, const_on_b: bool, value: int) -> bool:
    if value == 0:
        if op in (BinOp.ADD, BinOp.OR, BinOp.XOR):
            return True
        if const_on_b and op in (BinOp.SUB, BinOp.SLL, BinOp.SRL, BinOp.SRA):
            return True
    return False


def _substitute(instr: Instr, mapping: dict[Temp, Temp]) -> None:
    """Rewrite temp uses in-place through an alias mapping."""

    def resolve(temp: Optional[Temp]) -> Optional[Temp]:
        while temp in mapping:
            temp = mapping[temp]
        return temp

    if isinstance(instr, Bin):
        instr.a = resolve(instr.a)
        instr.b = resolve(instr.b)
    elif isinstance(instr, StoreVar):
        instr.src = resolve(instr.src)
    elif isinstance(instr, LoadArr):
        instr.index = resolve(instr.index)
    elif isinstance(instr, StoreArr):
        instr.index = resolve(instr.index)
        instr.src = resolve(instr.src)
    elif isinstance(instr, BranchZero):
        instr.cond = resolve(instr.cond)
    elif isinstance(instr, MarkerOp):
        instr.src = resolve(instr.src)


def fold_constants(code: list[Instr]) -> list[Instr]:
    """Fold Bin ops over constants; propagate aliases for identities.

    Temps are single-assignment, so one forward pass with a global
    environment is sound: a temp's defining instruction dominates every
    use (loops re-execute the same definition with the same constant).
    """
    env: dict[Temp, int] = {}
    aliases: dict[Temp, Temp] = {}
    output: list[Instr] = []
    for instr in code:
        _substitute(instr, aliases)
        if isinstance(instr, Const):
            env[instr.dest] = instr.value & _WORD
            output.append(instr)
            continue
        if isinstance(instr, Bin):
            a_const = env.get(instr.a)
            b_const = env.get(instr.b)
            if a_const is not None and b_const is not None:
                value = _eval(instr.op, a_const, b_const)
                env[instr.dest] = value
                output.append(Const(dest=instr.dest, value=value,
                                    line=instr.line,
                                    declassified=instr.declassified))
                continue
            if b_const is not None and _is_identity(instr.op, True, b_const):
                aliases[instr.dest] = instr.a
                continue
            if a_const is not None and _is_identity(instr.op, False, a_const):
                aliases[instr.dest] = instr.b
                continue
        output.append(instr)
    return output


def eliminate_dead_code(code: list[Instr]) -> list[Instr]:
    """Drop value-producing instructions whose results are never used."""
    while True:
        used: set[Temp] = set()
        for instr in code:
            used.update(uses_of(instr))
        kept = [instr for instr in code
                if not (isinstance(instr, (Const, Bin, LoadVar, LoadArr))
                        and instr.dest not in used)]
        if len(kept) == len(code):
            return kept
        code = kept


def optimize(code: list[Instr], level: int = 1) -> list[Instr]:
    """Run the optimization pipeline at the given level (0 = off)."""
    if level <= 0:
        return code
    previous_length = -1
    while len(code) != previous_length:
        previous_length = len(code)
        code = fold_constants(code)
        code = eliminate_dead_code(code)
    return code
