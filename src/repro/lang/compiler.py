"""Compiler driver: SecureC source -> linked simulator program.

Pipeline: parse -> semantic analysis -> lowering -> forward slicing ->
code generation -> assembly.  The result bundles every intermediate artifact
so tests and experiments can inspect the slice, the assembly, and the final
program image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.assembler import assemble
from ..isa.program import Program
from .ast import ProgramAst
from .codegen import CodegenOptions, generate
from .ir import Instr
from .lowering import lower
from .optimizer import optimize as optimize_ir
from .parser import parse
from .semantics import SymbolTable, analyze
from .slicing import Diagnostic, ForwardSlicer, SliceResult


@dataclass
class CompileResult:
    """Everything produced by one compilation."""

    program: Program
    assembly: str
    ir: list[Instr]
    table: SymbolTable
    slice: SliceResult
    ast: ProgramAst

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return self.slice.diagnostics

    @property
    def secure_static_fraction(self) -> float:
        """Fraction of emitted instructions carrying the secure bit."""
        return self.program.secure_fraction()


def compile_source(source: str, *, masking: str = "selective",
                   optimize: int = 0,
                   extra_seeds: frozenset[str] = frozenset(),
                   options: Optional[CodegenOptions] = None) -> CompileResult:
    """Compile SecureC source.

    masking:
      * ``"selective"`` — the paper's scheme: annotation + forward slicing.
      * ``"annotate-only"`` — no slicing; only direct uses of annotated
        variables are secured (ablation).
      * ``"none"`` — ignore annotations entirely (insecure baseline).

    optimize:
      * ``0`` — straightforward code in the paper's Figure 4 style.
      * ``1`` — constant folding, algebraic simplification, dead-code
        elimination, and immediate-form instruction selection.  Only
        public (untainted) computation can ever fold, so the masking
        property is unaffected.
      * ``2`` — additionally list-schedules basic blocks to fill load-use
        interlock slots (schedules depend only on opcodes/registers, so
        masked and unmasked builds stay cycle-aligned).
    """
    if masking not in ("selective", "annotate-only", "none"):
        raise ValueError(f"unknown masking mode {masking!r}")
    ast = parse(source)
    table = analyze(ast)
    ir = lower(ast, table)
    ir = optimize_ir(ir, level=optimize)
    if options is None and optimize >= 1:
        options = CodegenOptions(use_immediates=True)
    if masking == "none":
        slicer = ForwardSlicer(ir, table, propagate=True)
        # Run the analysis for diagnostics but discard the criticality.
        result = slicer.run(extra_seeds=extra_seeds)
        empty = SliceResult(tainted_vars=result.tainted_vars,
                            critical=frozenset(),
                            secure_index_loads=frozenset(),
                            diagnostics=result.diagnostics,
                            passes=result.passes,
                            cfg_edges=result.cfg_edges)
        # Clear the secure_index flags the slicer set on the IR.
        for instr in ir:
            if hasattr(instr, "secure_index"):
                instr.secure_index = False
        slice_result = empty
    else:
        propagate = masking == "selective"
        slicer = ForwardSlicer(ir, table, propagate=propagate)
        slice_result = slicer.run(extra_seeds=extra_seeds)
        if not propagate:
            # Annotate-only mode still must not use silw (that is part of
            # the sliced scheme); drop index security.
            for instr in ir:
                if hasattr(instr, "secure_index"):
                    instr.secure_index = False
            slice_result = SliceResult(
                tainted_vars=slice_result.tainted_vars,
                critical=slice_result.critical,
                secure_index_loads=frozenset(),
                diagnostics=slice_result.diagnostics,
                passes=slice_result.passes,
                cfg_edges=slice_result.cfg_edges)
    assembly = generate(ir, table, slice_result, options)
    program = assemble(assembly)
    if optimize >= 2:
        from .scheduler import schedule_program

        program = schedule_program(program)
    return CompileResult(program=program, assembly=assembly, ir=ir,
                         table=table, slice=slice_result, ast=ast)
