"""Control-flow graph over the three-address IR.

The forward-slicing pass is formulated as a monotone dataflow problem whose
complexity is bounded by the number of CFG edges (as the paper notes, citing
Horwitz/Reps/Binkley interprocedural slicing).  The CFG is also used to
detect secret-dependent control flow, which the architecture cannot mask and
the compiler must therefore report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import BranchZero, Instr, Jump, Label


@dataclass
class BasicBlock:
    """Half-open range [start, end) of IR instructions."""

    index: int
    start: int
    end: int
    label: str | None = None
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def instructions(self, code: list[Instr]) -> list[Instr]:
        return code[self.start:self.end]


class CFG:
    """Basic blocks plus edges for one IR listing."""

    def __init__(self, code: list[Instr]):
        self.code = code
        self.blocks: list[BasicBlock] = []
        self._label_to_block: dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        code = self.code
        # Block leaders: instruction 0, every label, every instruction
        # following a jump/branch.
        leaders = {0}
        for position, instr in enumerate(code):
            if isinstance(instr, Label):
                leaders.add(position)
            elif isinstance(instr, (Jump, BranchZero)):
                leaders.add(position + 1)
        leaders.discard(len(code))
        ordered = sorted(leaders)
        for block_index, start in enumerate(ordered):
            end = ordered[block_index + 1] if block_index + 1 < len(ordered) \
                else len(code)
            label = None
            if start < len(code) and isinstance(code[start], Label):
                label = code[start].name
            block = BasicBlock(index=block_index, start=start, end=end,
                               label=label)
            self.blocks.append(block)
            if label is not None:
                self._label_to_block[label] = block_index

        for block in self.blocks:
            if block.start == block.end:
                continue
            last = code[block.end - 1]
            if isinstance(last, Jump):
                self._edge(block.index, self._target_block(last.target))
            elif isinstance(last, BranchZero):
                self._edge(block.index, self._target_block(last.target))
                if block.index + 1 < len(self.blocks):
                    self._edge(block.index, block.index + 1)
            else:
                if block.index + 1 < len(self.blocks):
                    self._edge(block.index, block.index + 1)

    def _target_block(self, label: str) -> int:
        try:
            return self._label_to_block[label]
        except KeyError:
            raise ValueError(f"jump to unknown label {label!r}") from None

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.append(dst)
        self.blocks[dst].predecessors.append(src)

    @property
    def edge_count(self) -> int:
        return sum(len(block.successors) for block in self.blocks)

    def block_of(self, instr_index: int) -> BasicBlock:
        for block in self.blocks:
            if block.start <= instr_index < block.end:
                return block
        raise IndexError(f"instruction index {instr_index} out of range")
