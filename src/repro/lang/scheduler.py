"""Basic-block instruction scheduling (the ``-O2`` pass).

On the five-stage core, an instruction that consumes a load result in the
very next slot pays a one-cycle load-use interlock.  Straightforward
-O1 code is full of such pairs (``lw $t0, i`` / ``addiu $t1, $t0, 1``),
because constant folding removes exactly the filler instructions that used
to sit between them.  This pass list-schedules each basic block with a
one-cycle load-latency model to fill those slots with independent work.

Scheduling is a pure permutation *within* basic blocks: labels start
blocks, control transfers end them, and instruction counts are unchanged,
so no address or branch target moves.  Because the schedule depends only
on opcodes and register numbers — never on the secure bit or on data —
masked and unmasked builds of the same program stay cycle-aligned, and the
differential-trace methodology is unaffected.

Dependency edges (conservative):

* RAW / WAR / WAW on architectural registers (including $at/$v0/$v1
  scratch from pseudo-expansion);
* total order among memory operations except load/load pairs
  (marker stores are stores, so phase markers keep their order).
"""

from __future__ import annotations

from ..isa.instructions import Instruction
from ..isa.program import Program


def _block_ranges(program: Program) -> list[tuple[int, int]]:
    """Half-open [start, end) index ranges of basic blocks."""
    leaders = {0}
    label_addresses = set(program.symbols.values())
    for index, ins in enumerate(program.text):
        address = program.address_of_index(index)
        if address in label_addresses:
            leaders.add(index)
        if ins.spec.is_branch or ins.spec.is_jump or ins.spec.halts:
            leaders.add(index + 1)
    ordered = sorted(leader for leader in leaders
                     if leader < len(program.text))
    ranges = []
    for position, start in enumerate(ordered):
        end = ordered[position + 1] if position + 1 < len(ordered) \
            else len(program.text)
        ranges.append((start, end))
    return ranges


def _build_dependencies(block: list[Instruction]) -> list[set[int]]:
    """predecessors[j] = indices that must execute before block[j]."""
    predecessors: list[set[int]] = [set() for _ in block]
    last_write: dict[int, int] = {}
    reads_since_write: dict[int, list[int]] = {}
    last_memory: int | None = None
    for j, ins in enumerate(block):
        spec = ins.spec
        sources = [r for r in ins.sources if r]
        dest = ins.dest
        for register in sources:                      # RAW
            if register in last_write:
                predecessors[j].add(last_write[register])
        if dest:
            if dest in last_write:                    # WAW
                predecessors[j].add(last_write[dest])
            for reader in reads_since_write.get(dest, ()):   # WAR
                if reader != j:
                    predecessors[j].add(reader)
        if spec.is_load or spec.is_store:
            if last_memory is not None:
                previous = block[last_memory].spec
                if spec.is_store or previous.is_store:
                    predecessors[j].add(last_memory)
                else:
                    # load after load: only ordered through registers.
                    pass
            # Stores must also wait for every earlier load (a load moved
            # after an aliasing store would read the new value).
            if spec.is_store:
                for k in range(j):
                    if block[k].spec.is_load:
                        predecessors[j].add(k)
            last_memory = j
        for register in sources:
            reads_since_write.setdefault(register, []).append(j)
        if dest:
            last_write[dest] = j
            reads_since_write[dest] = []
    return predecessors


def _schedule_block(block: list[Instruction]) -> list[Instruction]:
    """List-schedule one block under a 1-cycle load-latency model."""
    if len(block) <= 2:
        return block
    terminator: Instruction | None = None
    body = block
    last = block[-1]
    if last.spec.is_branch or last.spec.is_jump or last.spec.halts:
        terminator = last
        body = block[:-1]
    if len(body) <= 1:
        return block

    predecessors = _build_dependencies(body)
    remaining_preds = [set(p) for p in predecessors]
    successors: list[list[int]] = [[] for _ in body]
    for j, preds in enumerate(predecessors):
        for i in preds:
            successors[i].append(j)

    scheduled: list[Instruction] = []
    done = [False] * len(body)
    previous_load_dest: int | None = None
    count = 0
    while count < len(body):
        ready = [j for j in range(len(body))
                 if not done[j] and not remaining_preds[j]]
        # Prefer a ready instruction that does not consume the previous
        # slot's load result (no interlock); tie-break on original order.
        choice = None
        if previous_load_dest is not None:
            for j in ready:
                if previous_load_dest not in body[j].sources:
                    choice = j
                    break
        if choice is None:
            choice = ready[0]
        ins = body[choice]
        scheduled.append(ins)
        done[choice] = True
        count += 1
        for j in successors[choice]:
            remaining_preds[j].discard(choice)
        previous_load_dest = ins.dest if ins.spec.is_load else None
    if terminator is not None:
        scheduled.append(terminator)
    return scheduled


def schedule_program(program: Program) -> Program:
    """Return a copy of ``program`` with stall-avoiding block schedules."""
    text = list(program.text)
    for start, end in _block_ranges(program):
        text[start:end] = _schedule_block(text[start:end])
    return program.replace_text(text)
