"""Block modes of operation over the DES reference cipher.

ECB and CBC with PKCS#7 padding, plus two-key/three-key Triple DES (EDE).
These operate on Python ``bytes`` at the library level — the simulator
workloads stay single-block, as in the paper's evaluation — and exist so
the package is usable as an actual DES implementation, not only as a
side-channel testbed.
"""

from __future__ import annotations

from .reference import decrypt_block, encrypt_block

BLOCK_SIZE = 8


class PaddingError(ValueError):
    """Raised when ciphertext unpadding fails (wrong key or corruption)."""


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always adds 1..block_size bytes)."""
    pad_length = block_size - (len(data) % block_size)
    return data + bytes([pad_length] * pad_length)


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("data length is not a multiple of the block size")
    pad_length = data[-1]
    if not 1 <= pad_length <= block_size:
        raise PaddingError("invalid padding length")
    if data[-pad_length:] != bytes([pad_length] * pad_length):
        raise PaddingError("inconsistent padding bytes")
    return data[:-pad_length]


def _blocks(data: bytes):
    for offset in range(0, len(data), BLOCK_SIZE):
        yield int.from_bytes(data[offset:offset + BLOCK_SIZE], "big")


def _to_bytes(block: int) -> bytes:
    return block.to_bytes(BLOCK_SIZE, "big")


def ecb_encrypt(plaintext: bytes, key: int) -> bytes:
    """DES-ECB with PKCS#7 padding."""
    padded = pkcs7_pad(plaintext)
    return b"".join(_to_bytes(encrypt_block(block, key))
                    for block in _blocks(padded))


def ecb_decrypt(ciphertext: bytes, key: int) -> bytes:
    """Inverse of :func:`ecb_encrypt`."""
    if len(ciphertext) % BLOCK_SIZE:
        raise PaddingError("ciphertext length is not block-aligned")
    padded = b"".join(_to_bytes(decrypt_block(block, key))
                      for block in _blocks(ciphertext))
    return pkcs7_unpad(padded)


def cbc_encrypt(plaintext: bytes, key: int, iv: int) -> bytes:
    """DES-CBC with PKCS#7 padding; ``iv`` is a 64-bit integer."""
    if not 0 <= iv < (1 << 64):
        raise ValueError("IV must be a 64-bit integer")
    padded = pkcs7_pad(plaintext)
    previous = iv
    output = []
    for block in _blocks(padded):
        previous = encrypt_block(block ^ previous, key)
        output.append(_to_bytes(previous))
    return b"".join(output)


def cbc_decrypt(ciphertext: bytes, key: int, iv: int) -> bytes:
    """Inverse of :func:`cbc_encrypt`."""
    if len(ciphertext) % BLOCK_SIZE:
        raise PaddingError("ciphertext length is not block-aligned")
    previous = iv
    output = []
    for block in _blocks(ciphertext):
        output.append(_to_bytes(decrypt_block(block, key) ^ previous))
        previous = block
    return pkcs7_unpad(b"".join(output))


# ---------------------------------------------------------------------------
# Triple DES (EDE)
# ---------------------------------------------------------------------------


def tdes_encrypt_block(plaintext: int, key1: int, key2: int,
                       key3: int | None = None) -> int:
    """EDE Triple DES on one block; omit ``key3`` for two-key 3DES."""
    if key3 is None:
        key3 = key1
    middle = decrypt_block(encrypt_block(plaintext, key1), key2)
    return encrypt_block(middle, key3)


def tdes_decrypt_block(ciphertext: int, key1: int, key2: int,
                       key3: int | None = None) -> int:
    """Inverse of :func:`tdes_encrypt_block`."""
    if key3 is None:
        key3 = key1
    middle = encrypt_block(decrypt_block(ciphertext, key3), key2)
    return decrypt_block(middle, key1)
