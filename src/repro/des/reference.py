"""Reference DES implementation (FIPS 46-3).

This is the golden model: the simulated DES program's ciphertext is checked
against it, and the DPA attack uses it to predict intermediate bits.  It
deliberately follows the structure of the paper's Figure 2 (initial
permutation, 16 rounds of left-side / key-generation / right-side operations,
inverse permutation) rather than a bit-sliced fast implementation.
"""

from __future__ import annotations

from .bitops import bits_to_int, int_to_bits, permute, xor_bits
from .keyschedule import key_schedule
from .tables import E, FLAT_SBOXES, FP, IP, P

BLOCK_BITS = 64
KEY_BITS = 64


def sbox_lookup(box_index: int, six_bits: int) -> int:
    """S-box output (4 bits) for a raw 6-bit input, flat-table layout."""
    if not 0 <= six_bits < 64:
        raise ValueError(f"S-box input out of range: {six_bits}")
    return FLAT_SBOXES[box_index][six_bits]


def f_function(r_bits: list[int], subkey: list[int]) -> list[int]:
    """The cipher function f(R, K) of Figure 1: E, XOR, S-boxes, P."""
    expanded = permute(r_bits, E)
    mixed = xor_bits(expanded, subkey)
    out_bits: list[int] = []
    for box_index in range(8):
        chunk = mixed[6 * box_index: 6 * box_index + 6]
        value = sbox_lookup(box_index, bits_to_int(chunk))
        out_bits.extend(int_to_bits(value, 4))
    return permute(out_bits, P)


def encrypt_block(plaintext: int, key: int, rounds: int = 16) -> int:
    """Encrypt one 64-bit block.

    ``rounds`` < 16 runs a reduced-round variant (no final swap semantics
    change: the standard swap-and-FP is always applied), which the
    evaluation uses for the round-1 differential-trace figures.
    """
    if not 1 <= rounds <= 16:
        raise ValueError("rounds must be in 1..16")
    subkeys = key_schedule(key)[:rounds]
    bits = permute(int_to_bits(plaintext, BLOCK_BITS), IP)
    left, right = bits[:32], bits[32:]
    for subkey in subkeys:
        left, right = right, xor_bits(left, f_function(right, subkey))
    # Pre-output block is R16 L16 (the halves are swapped before FP).
    return bits_to_int(permute(right + left, FP))


def decrypt_block(ciphertext: int, key: int, rounds: int = 16) -> int:
    """Decrypt one 64-bit block (subkeys applied in reverse order)."""
    if not 1 <= rounds <= 16:
        raise ValueError("rounds must be in 1..16")
    subkeys = key_schedule(key)[:rounds]
    bits = permute(int_to_bits(ciphertext, BLOCK_BITS), IP)
    left, right = bits[:32], bits[32:]
    for subkey in reversed(subkeys):
        left, right = right, xor_bits(left, f_function(right, subkey))
    return bits_to_int(permute(right + left, FP))


def round_states(plaintext: int, key: int,
                 rounds: int = 16) -> list[tuple[int, int]]:
    """(L_n, R_n) as 32-bit ints for n = 1..rounds (DPA ground truth)."""
    subkeys = key_schedule(key)[:rounds]
    bits = permute(int_to_bits(plaintext, BLOCK_BITS), IP)
    left, right = bits[:32], bits[32:]
    states = []
    for subkey in subkeys:
        left, right = right, xor_bits(left, f_function(right, subkey))
        states.append((bits_to_int(left), bits_to_int(right)))
    return states
