"""Bit-vector utilities shared by the DES reference and program builders.

DES is specified over MSB-first bit strings with 1-based indices; the
simulated DES program stores each bit in its own 32-bit word (the bit-array
style of the paper's Figure 4 loop ``newL[i] = oldR[i]``).  These helpers
convert between integers, MSB-first bit lists, and apply permutation tables.
"""

from __future__ import annotations

from typing import Sequence


def int_to_bits(value: int, width: int) -> list[int]:
    """Integer -> MSB-first bit list of the given width."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """MSB-first bit list -> integer."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"not a bit: {bit!r}")
        value = (value << 1) | bit
    return value


def permute(bits: Sequence[int], table: Sequence[int]) -> list[int]:
    """Apply a 1-based FIPS permutation table to an MSB-first bit list."""
    return [bits[position - 1] for position in table]


def xor_bits(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Bit-by-bit addition modulo two of two equal-length bit lists."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return [x ^ y for x, y in zip(a, b)]


def rotate_left(bits: Sequence[int], amount: int) -> list[int]:
    """Rotate a bit list left by ``amount`` positions."""
    amount %= len(bits)
    return list(bits[amount:]) + list(bits[:amount])


def hamming_weight(value: int) -> int:
    """Number of set bits (population count)."""
    return value.bit_count()


def parity_adjust_key(key56: int) -> int:
    """Expand a 56-bit key to 64 bits with odd-parity bytes (FIPS key form)."""
    if key56 < 0 or key56 >= (1 << 56):
        raise ValueError("key must be 56 bits")
    key64 = 0
    for byte_index in range(8):
        seven = (key56 >> (49 - 7 * byte_index)) & 0x7F
        parity = 1 ^ (seven.bit_count() & 1)
        key64 = (key64 << 8) | (seven << 1) | parity
    return key64
