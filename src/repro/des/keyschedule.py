"""DES key schedule (FIPS 46-3, Section "Key Schedule Calculation").

The key schedule is one of the key-dependent computations the paper secures:
key permutation (PC-1), the per-round rotations of C and D, and the subkey
selection (PC-2) all operate directly on secret data.
"""

from __future__ import annotations

from .bitops import int_to_bits, permute, rotate_left
from .tables import PC1, PC2, SHIFTS


def key_schedule(key64: int) -> list[list[int]]:
    """Derive the sixteen 48-bit round subkeys from a 64-bit key.

    Returns a list of sixteen MSB-first 48-entry bit lists.  The 8 parity
    bits of the input key are ignored, per the standard.
    """
    key_bits = int_to_bits(key64, 64)
    cd = permute(key_bits, PC1)
    c, d = cd[:28], cd[28:]
    subkeys = []
    for amount in SHIFTS:
        c = rotate_left(c, amount)
        d = rotate_left(d, amount)
        subkeys.append(permute(c + d, PC2))
    return subkeys


def cd_sequence(key64: int) -> list[tuple[list[int], list[int]]]:
    """The (C_n, D_n) register pairs for n = 1..16 (useful for tests)."""
    key_bits = int_to_bits(key64, 64)
    cd = permute(key_bits, PC1)
    c, d = cd[:28], cd[28:]
    pairs = []
    for amount in SHIFTS:
        c = rotate_left(c, amount)
        d = rotate_left(d, amount)
        pairs.append((list(c), list(d)))
    return pairs
