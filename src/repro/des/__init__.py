"""DES substrate: FIPS 46-3 tables, key schedule, and reference cipher."""

from .bitops import (bits_to_int, hamming_weight, int_to_bits,
                     parity_adjust_key, permute, rotate_left, xor_bits)
from .keyschedule import cd_sequence, key_schedule
from .modes import (PaddingError, cbc_decrypt, cbc_encrypt, ecb_decrypt,
                    ecb_encrypt, pkcs7_pad, pkcs7_unpad, tdes_decrypt_block,
                    tdes_encrypt_block)
from .reference import (decrypt_block, encrypt_block, f_function,
                        round_states, sbox_lookup)
from .tables import E, FLAT_SBOXES, FP, IP, P, PC1, PC2, SBOXES, SHIFTS

__all__ = [
    "E", "FLAT_SBOXES", "FP", "IP", "P", "PC1", "PC2", "SBOXES", "SHIFTS",
    "PaddingError", "bits_to_int", "cbc_decrypt", "cbc_encrypt",
    "cd_sequence", "decrypt_block", "ecb_decrypt", "ecb_encrypt",
    "encrypt_block", "pkcs7_pad", "pkcs7_unpad", "tdes_decrypt_block",
    "tdes_encrypt_block",
    "f_function", "hamming_weight", "int_to_bits", "key_schedule",
    "parity_adjust_key", "permute", "rotate_left", "round_states",
    "sbox_lookup", "xor_bits",
]
